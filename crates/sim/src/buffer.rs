//! The message buffer: per-channel FIFO queues of undelivered messages, with
//! broadcast payloads shared through a per-trial arena.
//!
//! The paper's model places sent messages into a "message buffer" from which
//! the adversary chooses what to deliver and when. We keep one FIFO queue per
//! ordered `(sender, recipient)` pair — the dedicated channel of the model —
//! so a recipient always correctly identifies the sender, and messages on a
//! single channel are delivered in order (a harmless strengthening; the
//! adversary still fully controls interleaving across channels).
//!
//! The `n * n` channels are stored as one flat `Vec` of queues indexed by
//! `sender * n + recipient` (sender-major). Channel access on the hot
//! enqueue/dequeue path is therefore a single index computation — no tree
//! walk, no rebalancing, no per-channel allocation after construction — and
//! whole-buffer scans (`iter`, `discard_undelivered`, `drop_to`) are linear
//! passes over a contiguous array. Iteration order is sender-major then
//! recipient, identical to the `(sender, recipient)`-keyed ordering of the
//! previous `BTreeMap` layout.
//!
//! # Payload storage: inline unicasts, arena-shared broadcasts
//!
//! A queue entry stores its [`Payload`] one of two ways:
//!
//! * **Unicast messages carry their payload inline.** A message with exactly
//!   one recipient never touches the arena: no slot allocation, no reference
//!   counting, no free-list traffic — enqueue is a move into the queue entry
//!   and delivery is a move (or borrow) back out. This is the
//!   `buffer/flat_churn` hot path.
//! * **Broadcast payloads live once in a reference-counted arena** owned by
//!   the buffer; each of the n entries carries a 4-byte `Copy` handle
//!   ([`PayloadRef`]). An n-way broadcast interns its payload **once** where
//!   an owning layout would clone it per recipient. Delivery resolves a
//!   handle to a borrowed `&Payload` — no move, no clone — and releases the
//!   reference afterwards; a slot whose last reference is released goes onto
//!   a free list and is recycled by the next intern, so arena memory is
//!   bounded by the peak number of *distinct* in-flight broadcast payloads.
//!
//! Each buffered message additionally carries a *chain tag* — the causal
//! depth assigned at send time (the length of the longest message chain
//! ending in the send) — and a *send-time stamp*, the buffer clock value
//! ([`MessageBuffer::set_now`]) at enqueue. The asynchronous scheduler uses
//! the chain tags to measure running time as the paper's Section 5 does; the
//! partial-synchrony scheduler uses the send-time stamps to enforce its
//! post-GST bounded-delay guarantee. Window executions ignore both.

use std::collections::VecDeque;

use agreement_model::{Envelope, Payload, ProcessorId};

/// A `Copy` handle to a broadcast payload stored in the buffer's arena.
///
/// Handles are only meaningful against the buffer that issued them, and only
/// between the `intern`/`pop_message` that produced them and the `release`
/// that retires them; the buffer recycles slots whose last reference is
/// released.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PayloadRef(u32);

/// One arena slot: a payload plus the number of queue entries (or popped,
/// not-yet-released handles) referencing it.
#[derive(Debug, Clone)]
struct Slot {
    payload: Payload,
    refs: u32,
}

/// The per-trial broadcast payload store: a slab of reference-counted slots
/// with a free list, so one broadcast payload serves all its recipients and
/// retired slots are recycled instead of reallocated.
#[derive(Debug, Clone, Default)]
struct PayloadArena {
    slots: Vec<Slot>,
    free: Vec<u32>,
}

impl PayloadArena {
    /// Stores `payload` with zero references (callers add one per enqueue).
    fn intern(&mut self, payload: Payload) -> PayloadRef {
        if let Some(idx) = self.free.pop() {
            let slot = &mut self.slots[idx as usize];
            slot.payload = payload;
            slot.refs = 0;
            PayloadRef(idx)
        } else {
            let idx = u32::try_from(self.slots.len()).expect("payload arena overflow");
            self.slots.push(Slot { payload, refs: 0 });
            PayloadRef(idx)
        }
    }

    fn retain(&mut self, handle: PayloadRef) {
        self.slots[handle.0 as usize].refs += 1;
    }

    fn get(&self, handle: PayloadRef) -> &Payload {
        &self.slots[handle.0 as usize].payload
    }

    /// Drops one reference; the slot is recycled once the last one goes.
    fn release(&mut self, handle: PayloadRef) {
        let slot = &mut self.slots[handle.0 as usize];
        debug_assert!(slot.refs > 0, "payload handle released more than once");
        slot.refs -= 1;
        if slot.refs == 0 {
            self.free.push(handle.0);
        }
    }

    /// Drops one reference and returns the payload by value: moved out when
    /// this was the last reference, cloned while others remain.
    ///
    /// Kept out of line so the unicast fast path of
    /// [`MessageBuffer::pop_with_chain`] (which never reaches the arena)
    /// stays small enough to inline; this only runs for shared broadcast
    /// payloads popped by value, which is not a hot path.
    #[inline(never)]
    fn release_take(&mut self, handle: PayloadRef) -> Payload {
        let slot = &mut self.slots[handle.0 as usize];
        debug_assert!(slot.refs > 0, "payload handle released more than once");
        slot.refs -= 1;
        if slot.refs == 0 {
            self.free.push(handle.0);
            std::mem::replace(&mut slot.payload, Payload::Opaque(Vec::new()))
        } else {
            slot.payload.clone()
        }
    }

    /// Number of live (referenced) payloads.
    fn live(&self) -> usize {
        self.slots.len() - self.free.len()
    }

    /// Drops every payload but keeps the slab and free-list capacity.
    fn clear(&mut self) {
        self.slots.clear();
        self.free.clear();
    }
}

/// How a queue entry stores its payload: moved in for unicasts, shared by
/// arena handle for broadcasts.
#[derive(Debug, Clone)]
enum Stored {
    /// A unicast payload owned by the entry itself — the arena (and its
    /// refcount bookkeeping) is skipped entirely.
    Inline(Payload),
    /// One reference to an arena slot shared with the other recipients of a
    /// broadcast.
    Shared(PayloadRef),
}

/// A payload handed out by [`MessageBuffer::pop_message`]: the inline value
/// moved out of the queue entry, or a still-owed arena reference.
#[derive(Debug)]
pub enum PoppedPayload {
    /// The unicast payload itself, moved out of the queue entry.
    Inline(Payload),
    /// One reference to a shared broadcast payload: resolve it with
    /// [`MessageBuffer::payload`] and retire it with
    /// [`MessageBuffer::release`] when done.
    Shared(PayloadRef),
}

/// One buffered message: its payload, its causal chain tag, and the buffer
/// clock value at which it was enqueued.
#[derive(Debug, Clone)]
struct Buffered {
    payload: Stored,
    chain: u64,
    sent_at: u64,
}

/// A FIFO buffer of undelivered messages with one flat queue per ordered
/// `(sender, recipient)` channel and a shared broadcast-payload arena.
#[derive(Debug, Clone, Default)]
pub struct MessageBuffer {
    /// Number of processors the flat layout currently covers.
    n: usize,
    /// `n * n` queues, channel `(s, r)` at index `s * n + r`.
    channels: Vec<VecDeque<Buffered>>,
    arena: PayloadArena,
    /// The clock value stamped onto entries as they are enqueued
    /// ([`MessageBuffer::set_now`]); schedulers that enforce delivery bounds
    /// keep it equal to the execution clock.
    now: u64,
    enqueued: u64,
    delivered: u64,
    dropped: u64,
}

impl MessageBuffer {
    /// Creates an empty buffer. The channel array grows on demand; prefer
    /// [`MessageBuffer::with_processors`] when `n` is known up front so the
    /// hot path never reallocates.
    pub fn new() -> Self {
        MessageBuffer::default()
    }

    /// Creates an empty buffer pre-sized for `n` processors (`n * n` channels).
    pub fn with_processors(n: usize) -> Self {
        MessageBuffer {
            n,
            channels: vec![VecDeque::new(); n * n],
            arena: PayloadArena::default(),
            now: 0,
            enqueued: 0,
            delivered: 0,
            dropped: 0,
        }
    }

    /// Clears the buffer for reuse by the next trial: empties every channel
    /// and the payload arena, zeroes the counters and the clock, and
    /// re-shapes the layout to `n` processors — all while keeping the channel
    /// array, queue and arena allocations warm. With an unchanged `n` this
    /// allocates nothing.
    pub fn reset(&mut self, n: usize) {
        if self.n == n {
            for queue in &mut self.channels {
                queue.clear();
            }
        } else {
            self.n = n;
            self.channels.clear();
            self.channels.resize(n * n, VecDeque::new());
        }
        self.arena.clear();
        self.now = 0;
        self.enqueued = 0;
        self.delivered = 0;
        self.dropped = 0;
    }

    /// Sets the clock value stamped onto subsequently enqueued messages.
    /// The execution core keeps this equal to its scheduler clock so the
    /// partial-synchrony model can age pending messages exactly.
    pub fn set_now(&mut self, now: u64) {
        self.now = now;
    }

    /// Flat index of the channel `sender -> recipient`, if both are covered by
    /// the current layout.
    #[inline]
    fn index(&self, sender: ProcessorId, recipient: ProcessorId) -> Option<usize> {
        let (s, r) = (sender.index(), recipient.index());
        if s < self.n && r < self.n {
            Some(s * self.n + r)
        } else {
            None
        }
    }

    /// Grows the layout so processor `id` is covered, remapping the existing
    /// queues into the wider sender-major grid. Only reachable through
    /// `enqueue` on a buffer built with [`MessageBuffer::new`]; engine-owned
    /// buffers are pre-sized and never take this path. Handles stay valid:
    /// the arena is untouched, only the queue grid is re-shaped.
    #[inline]
    fn ensure_covers(&mut self, id: usize) {
        if id < self.n {
            return;
        }
        self.grow_to_cover(id);
    }

    /// The cold body of [`MessageBuffer::ensure_covers`], outlined so the
    /// enqueue fast path inlines as a bounds check and nothing more.
    #[cold]
    #[inline(never)]
    fn grow_to_cover(&mut self, id: usize) {
        let new_n = id + 1;
        let mut channels = vec![VecDeque::new(); new_n * new_n];
        for s in 0..self.n {
            for r in 0..self.n {
                channels[s * new_n + r] = std::mem::take(&mut self.channels[s * self.n + r]);
            }
        }
        self.n = new_n;
        self.channels = channels;
    }

    #[inline]
    fn push_entry(&mut self, sender: ProcessorId, recipient: ProcessorId, entry: Buffered) {
        self.ensure_covers(sender.index().max(recipient.index()));
        self.enqueued += 1;
        let idx = self
            .index(sender, recipient)
            .expect("layout covers both endpoints after ensure_covers");
        self.channels[idx].push_back(entry);
    }

    /// Stores a broadcast payload in the arena without enqueueing it anywhere
    /// yet.
    ///
    /// This is the broadcast primitive: intern once, then
    /// [`MessageBuffer::enqueue_ref`] the returned handle per recipient. A
    /// handle that is never enqueued occupies its slot until the next
    /// [`MessageBuffer::reset`]. Unicast messages should use
    /// [`MessageBuffer::enqueue_unicast`] instead, which skips the arena.
    pub fn intern(&mut self, payload: Payload) -> PayloadRef {
        self.arena.intern(payload)
    }

    /// Resolves a shared handle to its payload.
    pub fn payload(&self, handle: PayloadRef) -> &Payload {
        self.arena.get(handle)
    }

    /// Drops one reference to `handle` (the counterpart of a
    /// [`PoppedPayload::Shared`]); the payload's slot is recycled when the
    /// last reference goes.
    pub fn release(&mut self, handle: PayloadRef) {
        self.arena.release(handle);
    }

    /// Number of distinct broadcast payloads currently alive in the arena. An
    /// n-way broadcast contributes **one**; unicasts contribute none (their
    /// payloads live inline in the queue entries).
    pub fn distinct_payloads(&self) -> usize {
        self.arena.live()
    }

    /// Places an envelope into the buffer with a zero chain tag.
    pub fn enqueue(&mut self, envelope: Envelope) {
        self.enqueue_with_chain(envelope, 0);
    }

    /// Places an envelope into the buffer, tagging it with the causal depth of
    /// its sending step. Unicast path: the payload is moved into the queue
    /// entry, never interned.
    #[inline]
    pub fn enqueue_with_chain(&mut self, envelope: Envelope, chain: u64) {
        self.enqueue_unicast(envelope.sender, envelope.recipient, envelope.payload, chain);
    }

    /// Enqueues a single-recipient message with its payload stored inline in
    /// the queue entry — no arena slot, no reference counting.
    #[inline]
    pub fn enqueue_unicast(
        &mut self,
        sender: ProcessorId,
        recipient: ProcessorId,
        payload: Payload,
        chain: u64,
    ) {
        let entry = Buffered {
            payload: Stored::Inline(payload),
            chain,
            sent_at: self.now,
        };
        self.push_entry(sender, recipient, entry);
    }

    /// Enqueues one more reference to an interned broadcast payload on the
    /// channel `sender -> recipient`.
    pub fn enqueue_ref(
        &mut self,
        sender: ProcessorId,
        recipient: ProcessorId,
        payload: PayloadRef,
        chain: u64,
    ) {
        self.arena.retain(payload);
        let entry = Buffered {
            payload: Stored::Shared(payload),
            chain,
            sent_at: self.now,
        };
        self.push_entry(sender, recipient, entry);
    }

    /// Removes and returns the oldest undelivered message from `sender` to
    /// `recipient`, if any.
    #[inline(always)]
    pub fn pop(&mut self, sender: ProcessorId, recipient: ProcessorId) -> Option<Payload> {
        self.pop_with_chain(sender, recipient)
            .map(|(payload, _)| payload)
    }

    /// Removes and returns the oldest undelivered message on the channel
    /// together with its chain tag.
    #[inline]
    pub fn pop_with_chain(
        &mut self,
        sender: ProcessorId,
        recipient: ProcessorId,
    ) -> Option<(Payload, u64)> {
        let idx = self.index(sender, recipient)?;
        let entry = self.channels[idx].pop_front()?;
        self.delivered += 1;
        match entry.payload {
            Stored::Inline(payload) => Some((payload, entry.chain)),
            Stored::Shared(handle) => self.pop_shared_by_value(handle, entry.chain),
        }
    }

    /// The shared-payload arm of [`MessageBuffer::pop_with_chain`], outlined
    /// so the inline-unicast fast path keeps a single payload source the
    /// optimizer can move straight through to the caller.
    #[cold]
    #[inline(never)]
    fn pop_shared_by_value(&mut self, handle: PayloadRef, chain: u64) -> Option<(Payload, u64)> {
        Some((self.arena.release_take(handle), chain))
    }

    /// Removes the oldest undelivered message on the channel, handing the
    /// caller its payload and chain tag.
    ///
    /// Unicast payloads arrive by value ([`PoppedPayload::Inline`]); shared
    /// broadcast payloads arrive as one owed arena reference
    /// ([`PoppedPayload::Shared`]) — resolve with [`MessageBuffer::payload`]
    /// and retire with [`MessageBuffer::release`] when done. Either way the
    /// payload is never cloned.
    #[inline]
    pub fn pop_message(
        &mut self,
        sender: ProcessorId,
        recipient: ProcessorId,
    ) -> Option<(PoppedPayload, u64)> {
        let idx = self.index(sender, recipient)?;
        let entry = self.channels[idx].pop_front()?;
        self.delivered += 1;
        let popped = match entry.payload {
            Stored::Inline(payload) => PoppedPayload::Inline(payload),
            Stored::Shared(handle) => PoppedPayload::Shared(handle),
        };
        Some((popped, entry.chain))
    }

    /// Removes and returns *all* undelivered messages from `sender` to
    /// `recipient`, oldest first.
    pub fn drain_channel(&mut self, sender: ProcessorId, recipient: ProcessorId) -> Vec<Payload> {
        let mut drained = Vec::new();
        while let Some((payload, _)) = self.pop_with_chain(sender, recipient) {
            drained.push(payload);
        }
        drained
    }

    /// Discards every undelivered message addressed to `recipient`.
    ///
    /// Used when a processor crashes: the model only requires delivery to
    /// processors that take infinitely many steps.
    pub fn drop_to(&mut self, recipient: ProcessorId) {
        let r = recipient.index();
        if r >= self.n {
            return;
        }
        let MessageBuffer {
            n,
            channels,
            arena,
            dropped,
            ..
        } = self;
        for s in 0..*n {
            for entry in channels[s * *n + r].drain(..) {
                if let Stored::Shared(handle) = entry.payload {
                    arena.release(handle);
                }
                *dropped += 1;
            }
        }
    }

    /// Replaces the payload of the oldest undelivered message on the channel,
    /// returning the original payload (the chain tag and send time are
    /// preserved). Used to model Byzantine corruption of a message in flight
    /// (the adversary may corrupt messages *sent by* corrupted processors).
    ///
    /// Corruption is per-entry: when the head shares its payload with other
    /// queue entries (a broadcast), only this entry is re-pointed at the
    /// (inline) replacement — the other recipients still see the original.
    pub fn corrupt_head(
        &mut self,
        sender: ProcessorId,
        recipient: ProcessorId,
        replacement: Payload,
    ) -> Option<Payload> {
        let idx = self.index(sender, recipient)?;
        let head = self.channels[idx].front_mut()?;
        let old = std::mem::replace(&mut head.payload, Stored::Inline(replacement));
        Some(match old {
            Stored::Inline(payload) => payload,
            Stored::Shared(handle) => self.arena.release_take(handle),
        })
    }

    /// Discards every undelivered message in the buffer, returning how many
    /// were dropped.
    ///
    /// The window scheduler calls this at the start of every sending phase: an
    /// acceptable window only delivers messages "just sent" within it, so
    /// anything left over from the previous window is never delivered.
    pub fn discard_undelivered(&mut self) -> usize {
        let MessageBuffer {
            channels,
            arena,
            dropped,
            ..
        } = self;
        let mut count = 0;
        for queue in channels {
            count += queue.len();
            for entry in queue.drain(..) {
                if let Stored::Shared(handle) = entry.payload {
                    arena.release(handle);
                }
            }
        }
        *dropped += count as u64;
        count
    }

    /// Returns the number of undelivered messages from `sender` to `recipient`.
    #[inline]
    pub fn pending_on(&self, sender: ProcessorId, recipient: ProcessorId) -> usize {
        self.index(sender, recipient)
            .map_or(0, |idx| self.channels[idx].len())
    }

    /// Returns the oldest undelivered payload on the channel without removing it.
    pub fn peek(&self, sender: ProcessorId, recipient: ProcessorId) -> Option<&Payload> {
        self.index(sender, recipient)
            .and_then(|idx| self.channels[idx].front())
            .map(|entry| self.resolve(entry))
    }

    /// The send-time stamp of the oldest undelivered message on the channel
    /// (the buffer clock value at its enqueue). Channels are FIFO and the
    /// clock is monotone, so the head is always the channel's oldest message;
    /// the partial-synchrony scheduler uses this to find overdue deliveries.
    pub fn head_sent_at(&self, sender: ProcessorId, recipient: ProcessorId) -> Option<u64> {
        self.index(sender, recipient)
            .and_then(|idx| self.channels[idx].front())
            .map(|entry| entry.sent_at)
    }

    #[inline]
    fn resolve<'a>(&'a self, entry: &'a Buffered) -> &'a Payload {
        match &entry.payload {
            Stored::Inline(payload) => payload,
            Stored::Shared(handle) => self.arena.get(*handle),
        }
    }

    /// Iterates over all `(sender, recipient, payload)` triples currently buffered,
    /// sender-major and oldest-first within each channel.
    pub fn iter(&self) -> impl Iterator<Item = (ProcessorId, ProcessorId, &Payload)> + '_ {
        let n = self.n;
        self.channels
            .iter()
            .enumerate()
            .flat_map(move |(idx, queue)| {
                let from = ProcessorId::new(idx / n.max(1));
                let to = ProcessorId::new(idx % n.max(1));
                queue
                    .iter()
                    .map(move |entry| (from, to, self.resolve(entry)))
            })
    }

    /// The senders with at least one undelivered message to `recipient`, in
    /// identity order.
    pub fn senders_with_pending(
        &self,
        recipient: ProcessorId,
    ) -> impl Iterator<Item = ProcessorId> + '_ {
        let r = recipient.index();
        let covered = if r < self.n { self.n } else { 0 };
        (0..covered).filter_map(move |s| {
            if self.channels[s * self.n + r].is_empty() {
                None
            } else {
                Some(ProcessorId::new(s))
            }
        })
    }

    /// Total number of undelivered messages.
    pub fn pending_total(&self) -> usize {
        self.channels.iter().map(VecDeque::len).sum()
    }

    /// Returns `true` when no messages are awaiting delivery.
    pub fn is_empty(&self) -> bool {
        self.pending_total() == 0
    }

    /// Number of messages ever enqueued.
    pub fn enqueued_count(&self) -> u64 {
        self.enqueued
    }

    /// Number of messages ever delivered (popped or drained).
    pub fn delivered_count(&self) -> u64 {
        self.delivered
    }

    /// Number of messages dropped because their recipient crashed.
    pub fn dropped_count(&self) -> u64 {
        self.dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agreement_model::Bit;

    fn env(from: usize, to: usize, round: u64) -> Envelope {
        Envelope::new(
            ProcessorId::new(from),
            ProcessorId::new(to),
            Payload::Report {
                round,
                value: Bit::Zero,
            },
        )
    }

    #[test]
    fn enqueue_then_pop_is_fifo_per_channel() {
        let mut buf = MessageBuffer::new();
        buf.enqueue(env(0, 1, 1));
        buf.enqueue(env(0, 1, 2));
        buf.enqueue(env(2, 1, 9));
        assert_eq!(buf.pending_on(ProcessorId::new(0), ProcessorId::new(1)), 2);
        let first = buf.pop(ProcessorId::new(0), ProcessorId::new(1)).unwrap();
        assert_eq!(first.round(), Some(1));
        let second = buf.pop(ProcessorId::new(0), ProcessorId::new(1)).unwrap();
        assert_eq!(second.round(), Some(2));
        assert!(buf.pop(ProcessorId::new(0), ProcessorId::new(1)).is_none());
        // The other channel is untouched.
        assert_eq!(buf.pending_on(ProcessorId::new(2), ProcessorId::new(1)), 1);
    }

    #[test]
    fn chain_tags_ride_along_with_their_messages() {
        let mut buf = MessageBuffer::new();
        buf.enqueue_with_chain(env(0, 1, 1), 4);
        buf.enqueue_with_chain(env(0, 1, 2), 9);
        let (first, chain) = buf
            .pop_with_chain(ProcessorId::new(0), ProcessorId::new(1))
            .unwrap();
        assert_eq!(first.round(), Some(1));
        assert_eq!(chain, 4);
        let (_, chain) = buf
            .pop_with_chain(ProcessorId::new(0), ProcessorId::new(1))
            .unwrap();
        assert_eq!(chain, 9);
    }

    #[test]
    fn send_time_stamps_follow_the_buffer_clock() {
        let mut buf = MessageBuffer::with_processors(2);
        buf.enqueue(env(0, 1, 1));
        buf.set_now(7);
        buf.enqueue(env(0, 1, 2));
        assert_eq!(
            buf.head_sent_at(ProcessorId::new(0), ProcessorId::new(1)),
            Some(0)
        );
        buf.pop(ProcessorId::new(0), ProcessorId::new(1));
        assert_eq!(
            buf.head_sent_at(ProcessorId::new(0), ProcessorId::new(1)),
            Some(7)
        );
        buf.pop(ProcessorId::new(0), ProcessorId::new(1));
        assert_eq!(
            buf.head_sent_at(ProcessorId::new(0), ProcessorId::new(1)),
            None
        );
        // Reset rewinds the clock with everything else.
        buf.set_now(9);
        buf.reset(2);
        buf.enqueue(env(0, 1, 3));
        assert_eq!(
            buf.head_sent_at(ProcessorId::new(0), ProcessorId::new(1)),
            Some(0)
        );
    }

    #[test]
    fn drain_channel_removes_everything_in_order() {
        let mut buf = MessageBuffer::new();
        for r in 1..=3 {
            buf.enqueue(env(4, 2, r));
        }
        let drained = buf.drain_channel(ProcessorId::new(4), ProcessorId::new(2));
        assert_eq!(drained.len(), 3);
        assert_eq!(drained[0].round(), Some(1));
        assert_eq!(drained[2].round(), Some(3));
        assert!(buf.is_empty());
        assert_eq!(buf.delivered_count(), 3);
    }

    #[test]
    fn drain_of_missing_channel_is_empty() {
        let mut buf = MessageBuffer::new();
        assert!(buf
            .drain_channel(ProcessorId::new(0), ProcessorId::new(1))
            .is_empty());
    }

    #[test]
    fn drop_to_discards_only_that_recipient() {
        let mut buf = MessageBuffer::new();
        buf.enqueue(env(0, 1, 1));
        buf.enqueue(env(0, 2, 1));
        buf.drop_to(ProcessorId::new(1));
        assert_eq!(buf.pending_on(ProcessorId::new(0), ProcessorId::new(1)), 0);
        assert_eq!(buf.pending_on(ProcessorId::new(0), ProcessorId::new(2)), 1);
        assert_eq!(buf.dropped_count(), 1);
    }

    #[test]
    fn corrupt_head_replaces_payload_in_place() {
        let mut buf = MessageBuffer::new();
        buf.enqueue_with_chain(env(3, 0, 5), 7);
        let original = buf
            .corrupt_head(
                ProcessorId::new(3),
                ProcessorId::new(0),
                Payload::Report {
                    round: 5,
                    value: Bit::One,
                },
            )
            .unwrap();
        assert_eq!(original.advocated_value(), Some(Bit::Zero));
        let now = buf.peek(ProcessorId::new(3), ProcessorId::new(0)).unwrap();
        assert_eq!(now.advocated_value(), Some(Bit::One));
        // Corruption rewrites contents, not causality: the tag is preserved.
        let (_, chain) = buf
            .pop_with_chain(ProcessorId::new(3), ProcessorId::new(0))
            .unwrap();
        assert_eq!(chain, 7);
    }

    #[test]
    fn senders_with_pending_lists_only_nonempty_channels() {
        let mut buf = MessageBuffer::new();
        buf.enqueue(env(0, 5, 1));
        buf.enqueue(env(3, 5, 1));
        buf.enqueue(env(3, 6, 1));
        let senders: Vec<ProcessorId> = buf.senders_with_pending(ProcessorId::new(5)).collect();
        assert_eq!(senders, vec![ProcessorId::new(0), ProcessorId::new(3)]);
    }

    #[test]
    fn iter_visits_every_pending_message() {
        let mut buf = MessageBuffer::new();
        buf.enqueue(env(0, 1, 1));
        buf.enqueue(env(1, 0, 2));
        buf.enqueue(env(1, 0, 3));
        assert_eq!(buf.iter().count(), 3);
        assert_eq!(buf.pending_total(), 3);
        assert_eq!(buf.enqueued_count(), 3);
    }

    #[test]
    fn iter_is_sender_major_like_the_old_btree_layout() {
        let mut buf = MessageBuffer::new();
        buf.enqueue(env(2, 0, 1));
        buf.enqueue(env(0, 2, 2));
        buf.enqueue(env(0, 1, 3));
        buf.enqueue(env(1, 0, 4));
        let order: Vec<(usize, usize)> = buf
            .iter()
            .map(|(from, to, _)| (from.index(), to.index()))
            .collect();
        assert_eq!(order, vec![(0, 1), (0, 2), (1, 0), (2, 0)]);
    }

    #[test]
    fn presized_buffer_handles_out_of_range_queries_gracefully() {
        let mut buf = MessageBuffer::with_processors(2);
        buf.enqueue(env(0, 1, 1));
        assert_eq!(buf.pending_on(ProcessorId::new(5), ProcessorId::new(0)), 0);
        assert!(buf.peek(ProcessorId::new(0), ProcessorId::new(9)).is_none());
        assert!(buf.pop(ProcessorId::new(9), ProcessorId::new(0)).is_none());
        assert_eq!(buf.senders_with_pending(ProcessorId::new(7)).count(), 0);
        buf.drop_to(ProcessorId::new(42));
        assert_eq!(buf.pending_total(), 1);
    }

    #[test]
    fn lazily_grown_buffer_matches_presized_behaviour() {
        let mut lazy = MessageBuffer::new();
        let mut sized = MessageBuffer::with_processors(6);
        for (from, to, round) in [(0, 1, 1), (5, 2, 2), (2, 5, 3), (0, 1, 4)] {
            lazy.enqueue(env(from, to, round));
            sized.enqueue(env(from, to, round));
        }
        let l: Vec<_> = lazy.iter().map(|(f, t, p)| (f, t, p.round())).collect();
        let s: Vec<_> = sized.iter().map(|(f, t, p)| (f, t, p.round())).collect();
        assert_eq!(l, s);
        assert_eq!(lazy.pending_total(), sized.pending_total());
    }

    #[test]
    fn unicasts_never_touch_the_arena() {
        let mut buf = MessageBuffer::with_processors(3);
        for round in 1..=5 {
            buf.enqueue(env(0, 1, round));
        }
        assert_eq!(buf.pending_total(), 5);
        assert_eq!(
            buf.distinct_payloads(),
            0,
            "inline unicasts allocate no arena slots"
        );
        for round in 1..=5 {
            let (popped, _) = buf
                .pop_message(ProcessorId::new(0), ProcessorId::new(1))
                .unwrap();
            match popped {
                PoppedPayload::Inline(payload) => assert_eq!(payload.round(), Some(round)),
                PoppedPayload::Shared(_) => panic!("unicast must pop inline"),
            }
        }
        assert_eq!(buf.delivered_count(), 5);
    }

    #[test]
    fn broadcast_shares_one_arena_slot_across_recipients() {
        let mut buf = MessageBuffer::with_processors(4);
        let handle = buf.intern(Payload::Report {
            round: 1,
            value: Bit::One,
        });
        for to in ProcessorId::all(4) {
            buf.enqueue_ref(ProcessorId::new(0), to, handle, 1);
        }
        assert_eq!(buf.pending_total(), 4, "four queue entries");
        assert_eq!(buf.distinct_payloads(), 1, "one stored payload");
        assert_eq!(buf.enqueued_count(), 4);
        // Every recipient resolves the same contents.
        for to in ProcessorId::all(4) {
            let (p, chain) = buf.pop_with_chain(ProcessorId::new(0), to).unwrap();
            assert_eq!(p.round(), Some(1));
            assert_eq!(chain, 1);
        }
        assert_eq!(buf.distinct_payloads(), 0, "slot retired with last pop");
        assert_eq!(buf.delivered_count(), 4);
    }

    #[test]
    fn corrupting_a_shared_head_leaves_other_recipients_untouched() {
        let mut buf = MessageBuffer::with_processors(3);
        let handle = buf.intern(Payload::Report {
            round: 1,
            value: Bit::Zero,
        });
        for to in ProcessorId::all(3) {
            buf.enqueue_ref(ProcessorId::new(0), to, handle, 2);
        }
        let original = buf
            .corrupt_head(
                ProcessorId::new(0),
                ProcessorId::new(1),
                Payload::Report {
                    round: 1,
                    value: Bit::One,
                },
            )
            .unwrap();
        assert_eq!(original.advocated_value(), Some(Bit::Zero));
        // Recipient 1 sees the corruption; 0 and 2 see the original.
        let corrupted = buf.pop(ProcessorId::new(0), ProcessorId::new(1)).unwrap();
        assert_eq!(corrupted.advocated_value(), Some(Bit::One));
        for to in [ProcessorId::new(0), ProcessorId::new(2)] {
            let p = buf.pop(ProcessorId::new(0), to).unwrap();
            assert_eq!(p.advocated_value(), Some(Bit::Zero));
        }
        assert_eq!(buf.distinct_payloads(), 0);
    }

    #[test]
    fn arena_recycles_slots_through_the_free_list() {
        let mut buf = MessageBuffer::with_processors(2);
        for round in 1..=10 {
            let handle = buf.intern(Payload::Report {
                round,
                value: Bit::Zero,
            });
            buf.enqueue_ref(ProcessorId::new(0), ProcessorId::new(1), handle, 1);
            let (p, _) = buf
                .pop_with_chain(ProcessorId::new(0), ProcessorId::new(1))
                .unwrap();
            assert_eq!(p.round(), Some(round));
            assert_eq!(
                buf.distinct_payloads(),
                0,
                "slot freed as soon as the only reference is popped"
            );
        }
    }

    #[test]
    fn shared_pop_release_round_trip_keeps_payload_borrowable() {
        let mut buf = MessageBuffer::with_processors(2);
        let handle = buf.intern(Payload::Report {
            round: 7,
            value: Bit::Zero,
        });
        buf.enqueue_ref(ProcessorId::new(1), ProcessorId::new(0), handle, 3);
        let (popped, chain) = buf
            .pop_message(ProcessorId::new(1), ProcessorId::new(0))
            .unwrap();
        assert_eq!(chain, 3);
        let PoppedPayload::Shared(handle) = popped else {
            panic!("broadcast entries pop as shared handles");
        };
        assert_eq!(buf.payload(handle).round(), Some(7));
        buf.release(handle);
        assert_eq!(buf.distinct_payloads(), 0);
        assert_eq!(buf.delivered_count(), 1);
    }

    #[test]
    fn reset_clears_messages_arena_and_counters_but_keeps_layout() {
        let mut buf = MessageBuffer::with_processors(3);
        buf.enqueue(env(0, 1, 1));
        buf.enqueue(env(2, 0, 2));
        buf.pop(ProcessorId::new(0), ProcessorId::new(1));
        buf.reset(3);
        assert!(buf.is_empty());
        assert_eq!(buf.distinct_payloads(), 0);
        assert_eq!(buf.enqueued_count(), 0);
        assert_eq!(buf.delivered_count(), 0);
        assert_eq!(buf.dropped_count(), 0);
        // Still usable for the same n without growth.
        buf.enqueue(env(2, 2, 1));
        assert_eq!(buf.pending_on(ProcessorId::new(2), ProcessorId::new(2)), 1);
        // Re-shaping to a different n works too.
        buf.reset(5);
        buf.enqueue(env(4, 4, 1));
        assert_eq!(buf.pending_on(ProcessorId::new(4), ProcessorId::new(4)), 1);
    }
}

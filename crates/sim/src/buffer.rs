//! The message buffer: per-channel FIFO queues of undelivered messages.
//!
//! The paper's model places sent messages into a "message buffer" from which
//! the adversary chooses what to deliver and when. We keep one FIFO queue per
//! ordered `(sender, recipient)` pair — the dedicated channel of the model —
//! so a recipient always correctly identifies the sender, and messages on a
//! single channel are delivered in order (a harmless strengthening; the
//! adversary still fully controls interleaving across channels).
//!
//! Each buffered message carries a *chain tag*: the causal depth assigned at
//! send time (the length of the longest message chain ending in the send).
//! The asynchronous scheduler uses the tags to measure running time as the
//! paper's Section 5 does; window executions ignore them.

use std::collections::BTreeMap;
use std::collections::VecDeque;

use agreement_model::{Envelope, Payload, ProcessorId};

/// One buffered message: the payload plus its causal chain tag.
#[derive(Debug, Clone)]
struct Buffered {
    payload: Payload,
    chain: u64,
}

/// A FIFO buffer of undelivered messages, indexed by `(sender, recipient)`.
#[derive(Debug, Clone, Default)]
pub struct MessageBuffer {
    channels: BTreeMap<(ProcessorId, ProcessorId), VecDeque<Buffered>>,
    enqueued: u64,
    delivered: u64,
    dropped: u64,
}

impl MessageBuffer {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        MessageBuffer::default()
    }

    /// Places an envelope into the buffer with a zero chain tag.
    pub fn enqueue(&mut self, envelope: Envelope) {
        self.enqueue_with_chain(envelope, 0);
    }

    /// Places an envelope into the buffer, tagging it with the causal depth of
    /// its sending step.
    pub fn enqueue_with_chain(&mut self, envelope: Envelope, chain: u64) {
        self.enqueued += 1;
        self.channels
            .entry((envelope.sender, envelope.recipient))
            .or_default()
            .push_back(Buffered {
                payload: envelope.payload,
                chain,
            });
    }

    /// Removes and returns the oldest undelivered message from `sender` to
    /// `recipient`, if any.
    pub fn pop(&mut self, sender: ProcessorId, recipient: ProcessorId) -> Option<Payload> {
        self.pop_with_chain(sender, recipient)
            .map(|(payload, _)| payload)
    }

    /// Removes and returns the oldest undelivered message on the channel
    /// together with its chain tag.
    pub fn pop_with_chain(
        &mut self,
        sender: ProcessorId,
        recipient: ProcessorId,
    ) -> Option<(Payload, u64)> {
        let queue = self.channels.get_mut(&(sender, recipient))?;
        let entry = queue.pop_front()?;
        self.delivered += 1;
        Some((entry.payload, entry.chain))
    }

    /// Removes and returns *all* undelivered messages from `sender` to
    /// `recipient`, oldest first.
    pub fn drain_channel(&mut self, sender: ProcessorId, recipient: ProcessorId) -> Vec<Payload> {
        match self.channels.get_mut(&(sender, recipient)) {
            Some(queue) => {
                let drained = std::mem::take(queue);
                self.delivered += drained.len() as u64;
                drained.into_iter().map(|entry| entry.payload).collect()
            }
            None => Vec::new(),
        }
    }

    /// Discards every undelivered message addressed to `recipient`.
    ///
    /// Used when a processor crashes: the model only requires delivery to
    /// processors that take infinitely many steps.
    pub fn drop_to(&mut self, recipient: ProcessorId) {
        for ((_, to), queue) in self.channels.iter_mut() {
            if *to == recipient {
                self.dropped += queue.len() as u64;
                queue.clear();
            }
        }
    }

    /// Replaces the payload of the oldest undelivered message on the channel,
    /// returning the original payload (the chain tag is preserved). Used to
    /// model Byzantine corruption of a message in flight (the adversary may
    /// corrupt messages *sent by* corrupted processors).
    pub fn corrupt_head(
        &mut self,
        sender: ProcessorId,
        recipient: ProcessorId,
        replacement: Payload,
    ) -> Option<Payload> {
        let queue = self.channels.get_mut(&(sender, recipient))?;
        let head = queue.front_mut()?;
        Some(std::mem::replace(&mut head.payload, replacement))
    }

    /// Discards every undelivered message in the buffer, returning how many
    /// were dropped.
    ///
    /// The window scheduler calls this at the start of every sending phase: an
    /// acceptable window only delivers messages "just sent" within it, so
    /// anything left over from the previous window is never delivered.
    pub fn discard_undelivered(&mut self) -> usize {
        let mut count = 0;
        for queue in self.channels.values_mut() {
            count += queue.len();
            queue.clear();
        }
        self.dropped += count as u64;
        count
    }

    /// Returns the number of undelivered messages from `sender` to `recipient`.
    pub fn pending_on(&self, sender: ProcessorId, recipient: ProcessorId) -> usize {
        self.channels
            .get(&(sender, recipient))
            .map_or(0, |q| q.len())
    }

    /// Returns the oldest undelivered payload on the channel without removing it.
    pub fn peek(&self, sender: ProcessorId, recipient: ProcessorId) -> Option<&Payload> {
        self.channels
            .get(&(sender, recipient))
            .and_then(|q| q.front())
            .map(|entry| &entry.payload)
    }

    /// Iterates over all `(sender, recipient, payload)` triples currently buffered,
    /// oldest-first within each channel.
    pub fn iter(&self) -> impl Iterator<Item = (ProcessorId, ProcessorId, &Payload)> + '_ {
        self.channels.iter().flat_map(|(&(from, to), queue)| {
            queue.iter().map(move |entry| (from, to, &entry.payload))
        })
    }

    /// The set of senders with at least one undelivered message to `recipient`.
    pub fn senders_with_pending(&self, recipient: ProcessorId) -> Vec<ProcessorId> {
        self.channels
            .iter()
            .filter(|(&(_, to), queue)| to == recipient && !queue.is_empty())
            .map(|(&(from, _), _)| from)
            .collect()
    }

    /// Total number of undelivered messages.
    pub fn pending_total(&self) -> usize {
        self.channels.values().map(VecDeque::len).sum()
    }

    /// Returns `true` when no messages are awaiting delivery.
    pub fn is_empty(&self) -> bool {
        self.pending_total() == 0
    }

    /// Number of messages ever enqueued.
    pub fn enqueued_count(&self) -> u64 {
        self.enqueued
    }

    /// Number of messages ever delivered (popped or drained).
    pub fn delivered_count(&self) -> u64 {
        self.delivered
    }

    /// Number of messages dropped because their recipient crashed.
    pub fn dropped_count(&self) -> u64 {
        self.dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agreement_model::Bit;

    fn env(from: usize, to: usize, round: u64) -> Envelope {
        Envelope::new(
            ProcessorId::new(from),
            ProcessorId::new(to),
            Payload::Report {
                round,
                value: Bit::Zero,
            },
        )
    }

    #[test]
    fn enqueue_then_pop_is_fifo_per_channel() {
        let mut buf = MessageBuffer::new();
        buf.enqueue(env(0, 1, 1));
        buf.enqueue(env(0, 1, 2));
        buf.enqueue(env(2, 1, 9));
        assert_eq!(buf.pending_on(ProcessorId::new(0), ProcessorId::new(1)), 2);
        let first = buf.pop(ProcessorId::new(0), ProcessorId::new(1)).unwrap();
        assert_eq!(first.round(), Some(1));
        let second = buf.pop(ProcessorId::new(0), ProcessorId::new(1)).unwrap();
        assert_eq!(second.round(), Some(2));
        assert!(buf.pop(ProcessorId::new(0), ProcessorId::new(1)).is_none());
        // The other channel is untouched.
        assert_eq!(buf.pending_on(ProcessorId::new(2), ProcessorId::new(1)), 1);
    }

    #[test]
    fn chain_tags_ride_along_with_their_messages() {
        let mut buf = MessageBuffer::new();
        buf.enqueue_with_chain(env(0, 1, 1), 4);
        buf.enqueue_with_chain(env(0, 1, 2), 9);
        let (first, chain) = buf
            .pop_with_chain(ProcessorId::new(0), ProcessorId::new(1))
            .unwrap();
        assert_eq!(first.round(), Some(1));
        assert_eq!(chain, 4);
        let (_, chain) = buf
            .pop_with_chain(ProcessorId::new(0), ProcessorId::new(1))
            .unwrap();
        assert_eq!(chain, 9);
    }

    #[test]
    fn drain_channel_removes_everything_in_order() {
        let mut buf = MessageBuffer::new();
        for r in 1..=3 {
            buf.enqueue(env(4, 2, r));
        }
        let drained = buf.drain_channel(ProcessorId::new(4), ProcessorId::new(2));
        assert_eq!(drained.len(), 3);
        assert_eq!(drained[0].round(), Some(1));
        assert_eq!(drained[2].round(), Some(3));
        assert!(buf.is_empty());
        assert_eq!(buf.delivered_count(), 3);
    }

    #[test]
    fn drain_of_missing_channel_is_empty() {
        let mut buf = MessageBuffer::new();
        assert!(buf
            .drain_channel(ProcessorId::new(0), ProcessorId::new(1))
            .is_empty());
    }

    #[test]
    fn drop_to_discards_only_that_recipient() {
        let mut buf = MessageBuffer::new();
        buf.enqueue(env(0, 1, 1));
        buf.enqueue(env(0, 2, 1));
        buf.drop_to(ProcessorId::new(1));
        assert_eq!(buf.pending_on(ProcessorId::new(0), ProcessorId::new(1)), 0);
        assert_eq!(buf.pending_on(ProcessorId::new(0), ProcessorId::new(2)), 1);
        assert_eq!(buf.dropped_count(), 1);
    }

    #[test]
    fn corrupt_head_replaces_payload_in_place() {
        let mut buf = MessageBuffer::new();
        buf.enqueue_with_chain(env(3, 0, 5), 7);
        let original = buf
            .corrupt_head(
                ProcessorId::new(3),
                ProcessorId::new(0),
                Payload::Report {
                    round: 5,
                    value: Bit::One,
                },
            )
            .unwrap();
        assert_eq!(original.advocated_value(), Some(Bit::Zero));
        let now = buf.peek(ProcessorId::new(3), ProcessorId::new(0)).unwrap();
        assert_eq!(now.advocated_value(), Some(Bit::One));
        // Corruption rewrites contents, not causality: the tag is preserved.
        let (_, chain) = buf
            .pop_with_chain(ProcessorId::new(3), ProcessorId::new(0))
            .unwrap();
        assert_eq!(chain, 7);
    }

    #[test]
    fn senders_with_pending_lists_only_nonempty_channels() {
        let mut buf = MessageBuffer::new();
        buf.enqueue(env(0, 5, 1));
        buf.enqueue(env(3, 5, 1));
        buf.enqueue(env(3, 6, 1));
        let mut senders = buf.senders_with_pending(ProcessorId::new(5));
        senders.sort();
        assert_eq!(senders, vec![ProcessorId::new(0), ProcessorId::new(3)]);
    }

    #[test]
    fn iter_visits_every_pending_message() {
        let mut buf = MessageBuffer::new();
        buf.enqueue(env(0, 1, 1));
        buf.enqueue(env(1, 0, 2));
        buf.enqueue(env(1, 0, 3));
        assert_eq!(buf.iter().count(), 3);
        assert_eq!(buf.pending_total(), 3);
        assert_eq!(buf.enqueued_count(), 3);
    }
}

//! The message buffer: per-channel FIFO queues of undelivered messages, with
//! broadcast payloads shared through a per-trial arena.
//!
//! The paper's model places sent messages into a "message buffer" from which
//! the adversary chooses what to deliver and when. We keep one FIFO queue per
//! ordered `(sender, recipient)` pair — the dedicated channel of the model —
//! so a recipient always correctly identifies the sender, and messages on a
//! single channel are delivered in order (a harmless strengthening; the
//! adversary still fully controls interleaving across channels).
//!
//! # Two channel layouts
//!
//! The buffer stores its channels one of two ways, selected by
//! [`BufferChoice`]:
//!
//! * **Dense** (small `n`): one flat `Vec` of `n * n` queues indexed
//!   `sender * n + recipient` (sender-major). Channel access on the hot
//!   enqueue/dequeue path is a single index computation — no tree walk, no
//!   rebalancing, no per-channel allocation after construction — and
//!   whole-buffer scans are linear passes over a contiguous array. The
//!   layout is O(n²) in memory *up front*, which is exactly right while `n`
//!   is a few dozen and hopeless at `n = 10_000` (10⁸ queues before the
//!   first message is sent).
//! * **Sparse** (large `n`): one *lane* per sender holding a sorted index of
//!   the recipients that sender has actually messaged, with the queues
//!   materialized lazily on first send. Memory is O(n + active channels), a
//!   committee multicast ([`MessageBuffer::multicast`]) costs
//!   O(|committee|) rather than O(n), and a per-sender `live` bitset lets
//!   whole-buffer scans ([`MessageBuffer::next_pending_channel_where`])
//!   skip idle senders sixty-four at a time. Channel access is a binary
//!   search of the sender's lane — O(log degree), where the degree is the
//!   number of *distinct* recipients the sender ever contacted.
//!
//! Both layouts present identical observable behaviour — same FIFO order,
//! same sender-major iteration and scan order, same counters — pinned by
//! equivalence tests here and byte-identical scenario output at the campaign
//! level. [`BufferChoice::Auto`] picks dense at or below
//! [`BufferChoice::DENSE_MAX`] processors and sparse above.
//!
//! # Payload storage: inline unicasts, arena-shared broadcasts
//!
//! A queue entry stores its [`Payload`] one of two ways:
//!
//! * **Unicast messages carry their payload inline.** A message with exactly
//!   one recipient never touches the arena: no slot allocation, no reference
//!   counting, no free-list traffic — enqueue is a move into the queue entry
//!   and delivery is a move (or borrow) back out. This is the
//!   `buffer/flat_churn` hot path.
//! * **Broadcast and multicast payloads live once in a reference-counted
//!   arena** owned by the buffer; each recipient's entry carries a 4-byte
//!   `Copy` handle ([`PayloadRef`]). An n-way broadcast interns its payload
//!   **once** where an owning layout would clone it per recipient. Delivery
//!   resolves a handle to a borrowed `&Payload` — no move, no clone — and
//!   releases the reference afterwards; a slot whose last reference is
//!   released goes onto a free list and is recycled by the next intern, so
//!   arena memory is bounded by the peak number of *distinct* in-flight
//!   shared payloads.
//!
//! Each buffered message additionally carries a *chain tag* — the causal
//! depth assigned at send time (the length of the longest message chain
//! ending in the send) — and a *send-time stamp*, the buffer clock value
//! ([`MessageBuffer::set_now`]) at enqueue. The asynchronous scheduler uses
//! the chain tags to measure running time as the paper's Section 5 does; the
//! partial-synchrony scheduler uses the send-time stamps to enforce its
//! post-GST bounded-delay guarantee. Window executions ignore both.

use std::collections::VecDeque;

use agreement_model::{Envelope, Payload, ProcessorId};

/// A `Copy` handle to a broadcast payload stored in the buffer's arena.
///
/// Handles are only meaningful against the buffer that issued them, and only
/// between the `intern`/`pop_message` that produced them and the `release`
/// that retires them; the buffer recycles slots whose last reference is
/// released.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PayloadRef(u32);

/// One arena slot: a payload plus the number of queue entries (or popped,
/// not-yet-released handles) referencing it.
#[derive(Debug, Clone)]
struct Slot {
    payload: Payload,
    refs: u32,
}

/// The per-trial broadcast payload store: a slab of reference-counted slots
/// with a free list, so one broadcast payload serves all its recipients and
/// retired slots are recycled instead of reallocated.
#[derive(Debug, Clone, Default)]
struct PayloadArena {
    slots: Vec<Slot>,
    free: Vec<u32>,
}

impl PayloadArena {
    /// Stores `payload` with zero references (callers add one per enqueue).
    fn intern(&mut self, payload: Payload) -> PayloadRef {
        if let Some(idx) = self.free.pop() {
            let slot = &mut self.slots[idx as usize];
            slot.payload = payload;
            slot.refs = 0;
            PayloadRef(idx)
        } else {
            let idx = u32::try_from(self.slots.len()).expect("payload arena overflow");
            self.slots.push(Slot { payload, refs: 0 });
            PayloadRef(idx)
        }
    }

    fn retain(&mut self, handle: PayloadRef) {
        self.slots[handle.0 as usize].refs += 1;
    }

    fn get(&self, handle: PayloadRef) -> &Payload {
        &self.slots[handle.0 as usize].payload
    }

    /// Drops one reference; the slot is recycled once the last one goes.
    fn release(&mut self, handle: PayloadRef) {
        let slot = &mut self.slots[handle.0 as usize];
        debug_assert!(slot.refs > 0, "payload handle released more than once");
        slot.refs -= 1;
        if slot.refs == 0 {
            self.free.push(handle.0);
        }
    }

    /// Drops one reference and returns the payload by value: moved out when
    /// this was the last reference, cloned while others remain.
    ///
    /// Kept out of line so the unicast fast path of
    /// [`MessageBuffer::pop_with_chain`] (which never reaches the arena)
    /// stays small enough to inline; this only runs for shared broadcast
    /// payloads popped by value, which is not a hot path.
    #[inline(never)]
    fn release_take(&mut self, handle: PayloadRef) -> Payload {
        let slot = &mut self.slots[handle.0 as usize];
        debug_assert!(slot.refs > 0, "payload handle released more than once");
        slot.refs -= 1;
        if slot.refs == 0 {
            self.free.push(handle.0);
            std::mem::replace(&mut slot.payload, Payload::Opaque(Vec::new()))
        } else {
            slot.payload.clone()
        }
    }

    /// Number of live (referenced) payloads.
    fn live(&self) -> usize {
        self.slots.len() - self.free.len()
    }

    /// Drops every payload but keeps the slab and free-list capacity.
    fn clear(&mut self) {
        self.slots.clear();
        self.free.clear();
    }
}

/// How a queue entry stores its payload: moved in for unicasts, shared by
/// arena handle for broadcasts.
#[derive(Debug, Clone)]
enum Stored {
    /// A unicast payload owned by the entry itself — the arena (and its
    /// refcount bookkeeping) is skipped entirely.
    Inline(Payload),
    /// One reference to an arena slot shared with the other recipients of a
    /// broadcast.
    Shared(PayloadRef),
}

/// A payload handed out by [`MessageBuffer::pop_message`]: the inline value
/// moved out of the queue entry, or a still-owed arena reference.
#[derive(Debug)]
pub enum PoppedPayload {
    /// The unicast payload itself, moved out of the queue entry.
    Inline(Payload),
    /// One reference to a shared broadcast payload: resolve it with
    /// [`MessageBuffer::payload`] and retire it with
    /// [`MessageBuffer::release`] when done.
    Shared(PayloadRef),
}

/// One buffered message: its payload, its causal chain tag, and the buffer
/// clock value at which it was enqueued.
#[derive(Debug, Clone)]
struct Buffered {
    payload: Stored,
    chain: u64,
    sent_at: u64,
}

/// Which channel layout a [`MessageBuffer`] uses (see the module docs for
/// the trade-off).
///
/// Threaded from
/// [`ScenarioSpec`](../agreement_core/struct.ScenarioSpec.html)-level
/// configuration down through campaign plans and trial workspaces; every
/// layer defaults to [`BufferChoice::Auto`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum BufferChoice {
    /// Dense at or below [`BufferChoice::DENSE_MAX`] processors, sparse
    /// above: the right layout without anyone having to ask.
    #[default]
    Auto,
    /// Always the flat `n * n` grid, regardless of `n`.
    Dense,
    /// Always the lane-indexed sparse fabric, regardless of `n`.
    Sparse,
}

impl BufferChoice {
    /// Largest `n` for which [`BufferChoice::Auto`] stays dense. Below this
    /// the n² grid is at most a few thousand queues and its direct indexing
    /// wins; above it the quadratic allocation starts to dominate.
    pub const DENSE_MAX: usize = 64;

    /// Whether this choice selects the sparse layout at `n` processors.
    pub fn sparse_for(self, n: usize) -> bool {
        match self {
            BufferChoice::Auto => n > Self::DENSE_MAX,
            BufferChoice::Dense => false,
            BufferChoice::Sparse => true,
        }
    }
}

/// One sender's channels in the sparse layout: a sorted index of recipient
/// ids, a parallel vector of their queues (materialized on first send and
/// kept — empty queues stay warm for the next message), and the lane's total
/// pending count.
#[derive(Debug, Clone, Default)]
struct Lane {
    /// Recipient ids with a materialized queue, sorted ascending.
    recipients: Vec<u32>,
    /// `queues[i]` is the channel to `recipients[i]`.
    queues: Vec<VecDeque<Buffered>>,
    /// Total undelivered messages across the lane's queues.
    pending: usize,
}

impl Lane {
    /// Slot index of recipient `r`, if materialized.
    #[inline]
    fn slot(&self, r: usize) -> Option<usize> {
        self.recipients.binary_search(&(r as u32)).ok()
    }

    /// The queue to recipient `r`, if materialized.
    #[inline]
    fn queue(&self, r: usize) -> Option<&VecDeque<Buffered>> {
        self.slot(r).map(|i| &self.queues[i])
    }

    /// The queue to recipient `r`, if materialized.
    #[inline]
    fn queue_mut(&mut self, r: usize) -> Option<&mut VecDeque<Buffered>> {
        match self.recipients.binary_search(&(r as u32)) {
            Ok(i) => Some(&mut self.queues[i]),
            Err(_) => None,
        }
    }

    /// The queue to recipient `r`, materialized on first use.
    fn materialize(&mut self, r: usize) -> &mut VecDeque<Buffered> {
        match self.recipients.binary_search(&(r as u32)) {
            Ok(i) => &mut self.queues[i],
            Err(i) => {
                self.recipients.insert(i, r as u32);
                self.queues.insert(i, VecDeque::new());
                &mut self.queues[i]
            }
        }
    }
}

/// Sets bit `i` of the packed bitset `words`.
#[inline]
fn set_bit(words: &mut [u64], i: usize) {
    words[i / 64] |= 1 << (i % 64);
}

/// Clears bit `i` of the packed bitset `words`.
#[inline]
fn clear_bit(words: &mut [u64], i: usize) {
    words[i / 64] &= !(1 << (i % 64));
}

/// Channel storage: the dense grid or the sparse lane fabric. Which one a
/// buffer holds is decided by its [`BufferChoice`] and `n`; all queue access
/// dispatches on this enum in one place per primitive.
#[derive(Debug, Clone)]
enum Layout {
    /// `n * n` queues, channel `(s, r)` at index `s * n + r`.
    Dense(Vec<VecDeque<Buffered>>),
    /// One [`Lane`] per sender plus a bitset with bit `s` set iff lane `s`
    /// has pending messages (`lanes[s].pending > 0`).
    Sparse { lanes: Vec<Lane>, live: Vec<u64> },
}

impl Default for Layout {
    fn default() -> Self {
        Layout::Dense(Vec::new())
    }
}

impl Layout {
    /// An empty layout of the requested kind, shaped for `n` processors.
    fn empty(sparse: bool, n: usize) -> Layout {
        if sparse {
            Layout::Sparse {
                lanes: vec![Lane::default(); n],
                live: vec![0; n.div_ceil(64)],
            }
        } else {
            Layout::Dense(vec![VecDeque::new(); n * n])
        }
    }
}

/// A FIFO buffer of undelivered messages with one queue per ordered
/// `(sender, recipient)` channel — dense grid or sparse lane fabric, see the
/// module docs — and a shared broadcast-payload arena.
#[derive(Debug, Clone, Default)]
pub struct MessageBuffer {
    /// Number of processors the current layout covers.
    n: usize,
    /// The layout policy this buffer re-derives its storage from on every
    /// [`MessageBuffer::reset`].
    choice: BufferChoice,
    /// The channel storage itself.
    layout: Layout,
    arena: PayloadArena,
    /// The clock value stamped onto entries as they are enqueued
    /// ([`MessageBuffer::set_now`]); schedulers that enforce delivery bounds
    /// keep it equal to the execution clock.
    now: u64,
    enqueued: u64,
    delivered: u64,
    dropped: u64,
}

impl MessageBuffer {
    /// Creates an empty buffer. The channel layout grows on demand; prefer
    /// [`MessageBuffer::with_processors`] when `n` is known up front so the
    /// hot path never reallocates.
    pub fn new() -> Self {
        MessageBuffer::default()
    }

    /// Creates an empty buffer pre-sized for `n` processors, with the layout
    /// picked automatically ([`BufferChoice::Auto`]).
    pub fn with_processors(n: usize) -> Self {
        MessageBuffer::with_choice(n, BufferChoice::Auto)
    }

    /// Creates an empty buffer pre-sized for `n` processors with an explicit
    /// layout policy.
    pub fn with_choice(n: usize, choice: BufferChoice) -> Self {
        MessageBuffer {
            n,
            choice,
            layout: Layout::empty(choice.sparse_for(n), n),
            arena: PayloadArena::default(),
            now: 0,
            enqueued: 0,
            delivered: 0,
            dropped: 0,
        }
    }

    /// Whether the buffer currently holds the sparse layout.
    pub fn is_sparse(&self) -> bool {
        matches!(self.layout, Layout::Sparse { .. })
    }

    /// The layout policy the buffer re-derives its storage from on reset.
    pub fn choice(&self) -> BufferChoice {
        self.choice
    }

    /// Sets the layout policy, rebuilding the (empty) storage if the policy
    /// picks the other layout at the current `n`. Must only be called on an
    /// empty buffer — the engines call it between trials, right after
    /// [`MessageBuffer::reset`].
    pub fn set_choice(&mut self, choice: BufferChoice) {
        self.choice = choice;
        let want_sparse = choice.sparse_for(self.n);
        if want_sparse != self.is_sparse() {
            debug_assert!(self.is_empty(), "layout switched while messages pending");
            self.layout = Layout::empty(want_sparse, self.n);
        }
    }

    /// Clears the buffer for reuse by the next trial: empties every channel
    /// and the payload arena, zeroes the counters and the clock, and
    /// re-shapes the layout to `n` processors (re-deriving dense vs sparse
    /// from the stored [`BufferChoice`]) — all while keeping the channel,
    /// queue and arena allocations warm. With an unchanged `n` this
    /// allocates nothing; the sparse layout additionally keeps its
    /// materialized recipient indexes, so steady-state traffic patterns stop
    /// paying materialization after the first trial.
    pub fn reset(&mut self, n: usize) {
        let want_sparse = self.choice.sparse_for(n);
        match &mut self.layout {
            Layout::Dense(channels) if !want_sparse => {
                if self.n == n {
                    for queue in channels.iter_mut() {
                        queue.clear();
                    }
                } else {
                    channels.clear();
                    channels.resize(n * n, VecDeque::new());
                }
            }
            Layout::Sparse { lanes, live } if want_sparse => {
                if self.n == n {
                    for lane in lanes.iter_mut() {
                        if lane.pending > 0 {
                            for queue in &mut lane.queues {
                                queue.clear();
                            }
                            lane.pending = 0;
                        }
                    }
                    live.fill(0);
                } else {
                    lanes.clear();
                    lanes.resize(n, Lane::default());
                    live.clear();
                    live.resize(n.div_ceil(64), 0);
                }
            }
            layout => *layout = Layout::empty(want_sparse, n),
        }
        self.n = n;
        self.arena.clear();
        self.now = 0;
        self.enqueued = 0;
        self.delivered = 0;
        self.dropped = 0;
    }

    /// Sets the clock value stamped onto subsequently enqueued messages.
    /// The execution core keeps this equal to its scheduler clock so the
    /// partial-synchrony model can age pending messages exactly.
    pub fn set_now(&mut self, now: u64) {
        self.now = now;
    }

    /// Grows the layout so processor `id` is covered. Only reachable through
    /// `enqueue` on a buffer built with [`MessageBuffer::new`]; engine-owned
    /// buffers are pre-sized and never take this path. Handles stay valid:
    /// the arena is untouched, only the channel storage is re-shaped.
    #[inline]
    fn ensure_covers(&mut self, id: usize) {
        if id < self.n {
            return;
        }
        self.grow_to_cover(id);
    }

    /// The cold body of [`MessageBuffer::ensure_covers`], outlined so the
    /// enqueue fast path inlines as a bounds check and nothing more. The
    /// dense grid is remapped into the wider sender-major layout; the sparse
    /// fabric just gains empty lanes.
    #[cold]
    #[inline(never)]
    fn grow_to_cover(&mut self, id: usize) {
        let new_n = id + 1;
        match &mut self.layout {
            Layout::Dense(channels) => {
                let mut grown = vec![VecDeque::new(); new_n * new_n];
                for s in 0..self.n {
                    for r in 0..self.n {
                        grown[s * new_n + r] = std::mem::take(&mut channels[s * self.n + r]);
                    }
                }
                *channels = grown;
            }
            Layout::Sparse { lanes, live } => {
                lanes.resize(new_n, Lane::default());
                live.resize(new_n.div_ceil(64), 0);
            }
        }
        self.n = new_n;
    }

    /// Appends an entry to the channel `sender -> recipient`, growing the
    /// layout if needed and bumping the enqueue counter.
    #[inline]
    fn push_entry(&mut self, sender: ProcessorId, recipient: ProcessorId, entry: Buffered) {
        self.ensure_covers(sender.index().max(recipient.index()));
        self.enqueued += 1;
        let (s, r) = (sender.index(), recipient.index());
        let n = self.n;
        match &mut self.layout {
            Layout::Dense(channels) => channels[s * n + r].push_back(entry),
            Layout::Sparse { lanes, live } => {
                let lane = &mut lanes[s];
                lane.materialize(r).push_back(entry);
                lane.pending += 1;
                set_bit(live, s);
            }
        }
    }

    /// Removes and returns the head entry of the channel, maintaining the
    /// sparse pending counts and live bits. Does **not** touch the delivered
    /// counter — callers decide whether a removal counts as a delivery.
    #[inline]
    fn pop_front(&mut self, sender: ProcessorId, recipient: ProcessorId) -> Option<Buffered> {
        let (s, r) = (sender.index(), recipient.index());
        if s >= self.n || r >= self.n {
            return None;
        }
        let n = self.n;
        match &mut self.layout {
            Layout::Dense(channels) => channels[s * n + r].pop_front(),
            Layout::Sparse { lanes, live } => {
                let lane = &mut lanes[s];
                let entry = lane.queue_mut(r)?.pop_front()?;
                lane.pending -= 1;
                if lane.pending == 0 {
                    clear_bit(live, s);
                }
                Some(entry)
            }
        }
    }

    /// The head entry of the channel, if any.
    #[inline]
    fn front(&self, sender: ProcessorId, recipient: ProcessorId) -> Option<&Buffered> {
        let (s, r) = (sender.index(), recipient.index());
        if s >= self.n || r >= self.n {
            return None;
        }
        match &self.layout {
            Layout::Dense(channels) => channels[s * self.n + r].front(),
            Layout::Sparse { lanes, .. } => lanes[s].queue(r).and_then(VecDeque::front),
        }
    }

    /// The head entry of the channel, if any, mutably.
    #[inline]
    fn front_mut(&mut self, sender: ProcessorId, recipient: ProcessorId) -> Option<&mut Buffered> {
        let (s, r) = (sender.index(), recipient.index());
        if s >= self.n || r >= self.n {
            return None;
        }
        let n = self.n;
        match &mut self.layout {
            Layout::Dense(channels) => channels[s * n + r].front_mut(),
            Layout::Sparse { lanes, .. } => lanes[s].queue_mut(r).and_then(VecDeque::front_mut),
        }
    }

    /// Stores a broadcast payload in the arena without enqueueing it anywhere
    /// yet.
    ///
    /// This is the broadcast primitive: intern once, then
    /// [`MessageBuffer::enqueue_ref`] the returned handle per recipient. A
    /// handle that is never enqueued occupies its slot until the next
    /// [`MessageBuffer::reset`]. Unicast messages should use
    /// [`MessageBuffer::enqueue_unicast`] instead, which skips the arena.
    pub fn intern(&mut self, payload: Payload) -> PayloadRef {
        self.arena.intern(payload)
    }

    /// Resolves a shared handle to its payload.
    pub fn payload(&self, handle: PayloadRef) -> &Payload {
        self.arena.get(handle)
    }

    /// Drops one reference to `handle` (the counterpart of a
    /// [`PoppedPayload::Shared`]); the payload's slot is recycled when the
    /// last reference goes.
    pub fn release(&mut self, handle: PayloadRef) {
        self.arena.release(handle);
    }

    /// Number of distinct broadcast payloads currently alive in the arena. An
    /// n-way broadcast contributes **one**; unicasts contribute none (their
    /// payloads live inline in the queue entries).
    pub fn distinct_payloads(&self) -> usize {
        self.arena.live()
    }

    /// Places an envelope into the buffer with a zero chain tag.
    pub fn enqueue(&mut self, envelope: Envelope) {
        self.enqueue_with_chain(envelope, 0);
    }

    /// Places an envelope into the buffer, tagging it with the causal depth of
    /// its sending step. Unicast path: the payload is moved into the queue
    /// entry, never interned.
    #[inline]
    pub fn enqueue_with_chain(&mut self, envelope: Envelope, chain: u64) {
        self.enqueue_unicast(envelope.sender, envelope.recipient, envelope.payload, chain);
    }

    /// Enqueues a single-recipient message with its payload stored inline in
    /// the queue entry — no arena slot, no reference counting.
    #[inline]
    pub fn enqueue_unicast(
        &mut self,
        sender: ProcessorId,
        recipient: ProcessorId,
        payload: Payload,
        chain: u64,
    ) {
        let entry = Buffered {
            payload: Stored::Inline(payload),
            chain,
            sent_at: self.now,
        };
        self.push_entry(sender, recipient, entry);
    }

    /// Enqueues one more reference to an interned broadcast payload on the
    /// channel `sender -> recipient`.
    pub fn enqueue_ref(
        &mut self,
        sender: ProcessorId,
        recipient: ProcessorId,
        payload: PayloadRef,
        chain: u64,
    ) {
        self.arena.retain(payload);
        let entry = Buffered {
            payload: Stored::Shared(payload),
            chain,
            sent_at: self.now,
        };
        self.push_entry(sender, recipient, entry);
    }

    /// Sends one payload to a *set* of recipients: the multicast-to-set
    /// primitive committees are built on.
    ///
    /// The payload is interned **once** and each recipient's queue gets one
    /// 4-byte reference, so the cost is O(|recipients|) queue work plus one
    /// arena slot — independent of `n`. On the sparse layout only the
    /// addressed recipients' queues are ever materialized, so a committee of
    /// `k` among 10 000 processors touches `k` queues, not 10 000. An empty
    /// set is a no-op; a single-recipient set degenerates to the inline
    /// unicast path and skips the arena entirely. Duplicate ids in
    /// `recipients` enqueue one message per occurrence, in slice order.
    pub fn multicast(
        &mut self,
        sender: ProcessorId,
        recipients: &[ProcessorId],
        payload: Payload,
        chain: u64,
    ) {
        match recipients {
            [] => {}
            [only] => self.enqueue_unicast(sender, *only, payload, chain),
            _ => {
                let handle = self.intern(payload);
                for &to in recipients {
                    self.enqueue_ref(sender, to, handle, chain);
                }
            }
        }
    }

    /// Removes and returns the oldest undelivered message from `sender` to
    /// `recipient`, if any.
    #[inline(always)]
    pub fn pop(&mut self, sender: ProcessorId, recipient: ProcessorId) -> Option<Payload> {
        self.pop_with_chain(sender, recipient)
            .map(|(payload, _)| payload)
    }

    /// Removes and returns the oldest undelivered message on the channel
    /// together with its chain tag.
    #[inline]
    pub fn pop_with_chain(
        &mut self,
        sender: ProcessorId,
        recipient: ProcessorId,
    ) -> Option<(Payload, u64)> {
        let entry = self.pop_front(sender, recipient)?;
        self.delivered += 1;
        match entry.payload {
            Stored::Inline(payload) => Some((payload, entry.chain)),
            Stored::Shared(handle) => self.pop_shared_by_value(handle, entry.chain),
        }
    }

    /// The shared-payload arm of [`MessageBuffer::pop_with_chain`], outlined
    /// so the inline-unicast fast path keeps a single payload source the
    /// optimizer can move straight through to the caller.
    #[cold]
    #[inline(never)]
    fn pop_shared_by_value(&mut self, handle: PayloadRef, chain: u64) -> Option<(Payload, u64)> {
        Some((self.arena.release_take(handle), chain))
    }

    /// Removes the oldest undelivered message on the channel, handing the
    /// caller its payload and chain tag.
    ///
    /// Unicast payloads arrive by value ([`PoppedPayload::Inline`]); shared
    /// broadcast payloads arrive as one owed arena reference
    /// ([`PoppedPayload::Shared`]) — resolve with [`MessageBuffer::payload`]
    /// and retire with [`MessageBuffer::release`] when done. Either way the
    /// payload is never cloned.
    #[inline]
    pub fn pop_message(
        &mut self,
        sender: ProcessorId,
        recipient: ProcessorId,
    ) -> Option<(PoppedPayload, u64)> {
        let entry = self.pop_front(sender, recipient)?;
        self.delivered += 1;
        let popped = match entry.payload {
            Stored::Inline(payload) => PoppedPayload::Inline(payload),
            Stored::Shared(handle) => PoppedPayload::Shared(handle),
        };
        Some((popped, entry.chain))
    }

    /// Removes *all* undelivered messages from `sender` to `recipient` into
    /// `out`, oldest first. `out` is appended to, not cleared — pass a
    /// reusable scratch vector to keep channel drains allocation-free.
    pub fn drain_channel_into(
        &mut self,
        sender: ProcessorId,
        recipient: ProcessorId,
        out: &mut Vec<Payload>,
    ) {
        while let Some((payload, _)) = self.pop_with_chain(sender, recipient) {
            out.push(payload);
        }
    }

    /// Removes and returns *all* undelivered messages from `sender` to
    /// `recipient`, oldest first. Allocates a fresh `Vec` per call; hot
    /// paths should use [`MessageBuffer::drain_channel_into`] (or pop in a
    /// loop) instead.
    pub fn drain_channel(&mut self, sender: ProcessorId, recipient: ProcessorId) -> Vec<Payload> {
        let mut drained = Vec::new();
        self.drain_channel_into(sender, recipient, &mut drained);
        drained
    }

    /// Discards every undelivered message addressed to `recipient`.
    ///
    /// Used when a processor crashes: the model only requires delivery to
    /// processors that take infinitely many steps.
    pub fn drop_to(&mut self, recipient: ProcessorId) {
        let r = recipient.index();
        if r >= self.n {
            return;
        }
        let MessageBuffer {
            n,
            layout,
            arena,
            dropped,
            ..
        } = self;
        match layout {
            Layout::Dense(channels) => {
                for s in 0..*n {
                    for entry in channels[s * *n + r].drain(..) {
                        if let Stored::Shared(handle) = entry.payload {
                            arena.release(handle);
                        }
                        *dropped += 1;
                    }
                }
            }
            Layout::Sparse { lanes, live } => {
                for (s, lane) in lanes.iter_mut().enumerate() {
                    if lane.pending == 0 {
                        continue;
                    }
                    let Some(i) = lane.slot(r) else { continue };
                    let removed = lane.queues[i].len();
                    if removed == 0 {
                        continue;
                    }
                    for entry in lane.queues[i].drain(..) {
                        if let Stored::Shared(handle) = entry.payload {
                            arena.release(handle);
                        }
                    }
                    lane.pending -= removed;
                    *dropped += removed as u64;
                    if lane.pending == 0 {
                        clear_bit(live, s);
                    }
                }
            }
        }
    }

    /// Replaces the payload of the oldest undelivered message on the channel,
    /// returning the original payload (the chain tag and send time are
    /// preserved). Used to model Byzantine corruption of a message in flight
    /// (the adversary may corrupt messages *sent by* corrupted processors).
    ///
    /// Corruption is per-entry: when the head shares its payload with other
    /// queue entries (a broadcast), only this entry is re-pointed at the
    /// (inline) replacement — the other recipients still see the original.
    pub fn corrupt_head(
        &mut self,
        sender: ProcessorId,
        recipient: ProcessorId,
        replacement: Payload,
    ) -> Option<Payload> {
        let head = self.front_mut(sender, recipient)?;
        let old = std::mem::replace(&mut head.payload, Stored::Inline(replacement));
        Some(match old {
            Stored::Inline(payload) => payload,
            Stored::Shared(handle) => self.arena.release_take(handle),
        })
    }

    /// Discards every undelivered message in the buffer, returning how many
    /// were dropped.
    ///
    /// The window scheduler calls this at the start of every sending phase: an
    /// acceptable window only delivers messages "just sent" within it, so
    /// anything left over from the previous window is never delivered. On the
    /// sparse layout only lanes with pending messages are visited.
    pub fn discard_undelivered(&mut self) -> usize {
        let MessageBuffer {
            layout,
            arena,
            dropped,
            ..
        } = self;
        let mut count = 0;
        match layout {
            Layout::Dense(channels) => {
                for queue in channels {
                    count += queue.len();
                    for entry in queue.drain(..) {
                        if let Stored::Shared(handle) = entry.payload {
                            arena.release(handle);
                        }
                    }
                }
            }
            Layout::Sparse { lanes, live } => {
                for lane in lanes.iter_mut() {
                    if lane.pending == 0 {
                        continue;
                    }
                    count += lane.pending;
                    for queue in &mut lane.queues {
                        for entry in queue.drain(..) {
                            if let Stored::Shared(handle) = entry.payload {
                                arena.release(handle);
                            }
                        }
                    }
                    lane.pending = 0;
                }
                live.fill(0);
            }
        }
        *dropped += count as u64;
        count
    }

    /// Returns the number of undelivered messages from `sender` to `recipient`.
    #[inline]
    pub fn pending_on(&self, sender: ProcessorId, recipient: ProcessorId) -> usize {
        let (s, r) = (sender.index(), recipient.index());
        if s >= self.n || r >= self.n {
            return 0;
        }
        match &self.layout {
            Layout::Dense(channels) => channels[s * self.n + r].len(),
            Layout::Sparse { lanes, .. } => lanes[s].queue(r).map_or(0, VecDeque::len),
        }
    }

    /// Returns the oldest undelivered payload on the channel without removing it.
    pub fn peek(&self, sender: ProcessorId, recipient: ProcessorId) -> Option<&Payload> {
        self.front(sender, recipient)
            .map(|entry| self.resolve(entry))
    }

    /// The send-time stamp of the oldest undelivered message on the channel
    /// (the buffer clock value at its enqueue). Channels are FIFO and the
    /// clock is monotone, so the head is always the channel's oldest message;
    /// the partial-synchrony scheduler uses this to find overdue deliveries.
    pub fn head_sent_at(&self, sender: ProcessorId, recipient: ProcessorId) -> Option<u64> {
        self.front(sender, recipient).map(|entry| entry.sent_at)
    }

    #[inline]
    fn resolve<'a>(&'a self, entry: &'a Buffered) -> &'a Payload {
        match &entry.payload {
            Stored::Inline(payload) => payload,
            Stored::Shared(handle) => self.arena.get(*handle),
        }
    }

    /// Iterates over all `(sender, recipient, payload)` triples currently buffered,
    /// sender-major and oldest-first within each channel. The order is
    /// identical on both layouts (and to the `(sender, recipient)`-keyed
    /// ordering of the original `BTreeMap` layout).
    pub fn iter(&self) -> impl Iterator<Item = (ProcessorId, ProcessorId, &Payload)> + '_ {
        PendingIter {
            buf: self,
            sender: 0,
            slot: 0,
            entry: 0,
        }
    }

    /// The senders with at least one undelivered message to `recipient`, in
    /// identity order.
    pub fn senders_with_pending(
        &self,
        recipient: ProcessorId,
    ) -> impl Iterator<Item = ProcessorId> + '_ {
        let covered = if recipient.index() < self.n {
            self.n
        } else {
            0
        };
        (0..covered).filter_map(move |s| {
            if self.pending_on(ProcessorId::new(s), recipient) > 0 {
                Some(ProcessorId::new(s))
            } else {
                None
            }
        })
    }

    /// Finds the first channel with a pending message at or after `cursor`
    /// (wrapping round-robin over the `n * n` sender-major channel space)
    /// whose endpoints the `admit` predicate accepts. Returns the advanced
    /// cursor — one past the hit — plus the channel's endpoints, or `None`
    /// when no admitted channel has pending messages.
    ///
    /// `n` is the *caller's* channel space (the system size), which may
    /// exceed the buffer's own coverage when the buffer was grown lazily;
    /// cursor arithmetic always uses `n * n` so round-robin fairness is over
    /// the system, not the traffic pattern. On the dense layout this is a
    /// flat wrapping scan; on the sparse layout idle senders are skipped
    /// sixty-four at a time through the live bitset and only materialized
    /// recipients are visited, making the common adversary pattern —
    /// resume-where-you-left-off round-robin — amortized O(1) per delivery
    /// instead of O(n²). Both layouts return identical results for identical
    /// contents.
    pub fn next_pending_channel_where(
        &self,
        n: usize,
        cursor: usize,
        admit: impl Fn(ProcessorId, ProcessorId) -> bool,
    ) -> Option<(usize, ProcessorId, ProcessorId)> {
        let channels = n * n;
        if channels == 0 || self.is_empty() {
            return None;
        }
        match &self.layout {
            Layout::Dense(_) => (0..channels)
                .map(|offset| (cursor + offset) % channels)
                .find_map(|idx| {
                    let from = ProcessorId::new(idx / n);
                    let to = ProcessorId::new(idx % n);
                    if !admit(from, to) || self.pending_on(from, to) == 0 {
                        return None;
                    }
                    Some(((idx + 1) % channels, from, to))
                }),
            Layout::Sparse { lanes, live } => {
                let start = cursor % channels;
                let (s0, r0) = (start / n, start % n);
                let lane_hi = lanes.len().min(n);
                // Phase A: the cursor lane's recipients at or after the
                // cursor.
                if s0 < lane_hi {
                    if let Some(hit) = scan_lane(lanes, s0, r0, n, n, &admit) {
                        return Some(hit);
                    }
                }
                // Phase B: every other lane in cursor order — senders after
                // the cursor, then senders before it — skipping idle senders
                // by the word through the live bitset.
                if let Some(hit) =
                    scan_live_range(lanes, live, (s0 + 1).min(lane_hi), lane_hi, n, &admit)
                {
                    return Some(hit);
                }
                if let Some(hit) = scan_live_range(lanes, live, 0, s0.min(lane_hi), n, &admit) {
                    return Some(hit);
                }
                // Phase C: the cursor lane's recipients before the cursor.
                if s0 < lane_hi {
                    if let Some(hit) = scan_lane(lanes, s0, 0, r0, n, &admit) {
                        return Some(hit);
                    }
                }
                None
            }
        }
    }

    /// [`MessageBuffer::next_pending_channel_where`] with every channel
    /// admitted.
    pub fn next_pending_channel(
        &self,
        n: usize,
        cursor: usize,
    ) -> Option<(usize, ProcessorId, ProcessorId)> {
        self.next_pending_channel_where(n, cursor, |_, _| true)
    }

    /// Total number of undelivered messages. O(1): maintained as the
    /// identity `enqueued - delivered - dropped`, which every mutation
    /// preserves.
    pub fn pending_total(&self) -> usize {
        (self.enqueued - self.delivered - self.dropped) as usize
    }

    /// Returns `true` when no messages are awaiting delivery.
    pub fn is_empty(&self) -> bool {
        self.pending_total() == 0
    }

    /// Number of messages ever enqueued.
    pub fn enqueued_count(&self) -> u64 {
        self.enqueued
    }

    /// Number of messages ever delivered (popped or drained).
    pub fn delivered_count(&self) -> u64 {
        self.delivered
    }

    /// Number of messages dropped because their recipient crashed.
    pub fn dropped_count(&self) -> u64 {
        self.dropped
    }
}

/// Scans lane `s` for a pending, admitted channel to a recipient in
/// `[lo_r, hi_r)`, in ascending recipient order. Returns the advanced
/// cursor (in the caller's `n * n` channel space) and the endpoints.
fn scan_lane(
    lanes: &[Lane],
    s: usize,
    lo_r: usize,
    hi_r: usize,
    n: usize,
    admit: &impl Fn(ProcessorId, ProcessorId) -> bool,
) -> Option<(usize, ProcessorId, ProcessorId)> {
    let lane = lanes.get(s)?;
    if lane.pending == 0 {
        return None;
    }
    let from = ProcessorId::new(s);
    let start = lane.recipients.partition_point(|&r| (r as usize) < lo_r);
    for (&r, queue) in lane.recipients[start..].iter().zip(&lane.queues[start..]) {
        let r = r as usize;
        if r >= hi_r {
            break;
        }
        if queue.is_empty() {
            continue;
        }
        let to = ProcessorId::new(r);
        if !admit(from, to) {
            continue;
        }
        let idx = s * n + r;
        return Some(((idx + 1) % (n * n), from, to));
    }
    None
}

/// Scans the lanes of senders in `[lo, hi)` (ascending) that the `live`
/// bitset marks as having pending messages, word by word.
fn scan_live_range(
    lanes: &[Lane],
    live: &[u64],
    lo: usize,
    hi: usize,
    n: usize,
    admit: &impl Fn(ProcessorId, ProcessorId) -> bool,
) -> Option<(usize, ProcessorId, ProcessorId)> {
    if lo >= hi {
        return None;
    }
    let lo_word = lo / 64;
    let hi_word = (hi - 1) / 64;
    for (w, &bits) in live.iter().enumerate().take(hi_word + 1).skip(lo_word) {
        let mut word = bits;
        if w == lo_word {
            word &= !0u64 << (lo % 64);
        }
        if w == hi_word {
            let rem = hi - hi_word * 64;
            if rem < 64 {
                word &= (1u64 << rem) - 1;
            }
        }
        while word != 0 {
            let s = w * 64 + word.trailing_zeros() as usize;
            word &= word - 1;
            if let Some(hit) = scan_lane(lanes, s, 0, n, n, admit) {
                return Some(hit);
            }
        }
    }
    None
}

/// The iterator behind [`MessageBuffer::iter`]: a sender-major walk over
/// whichever layout the buffer holds.
struct PendingIter<'a> {
    buf: &'a MessageBuffer,
    /// Current sender.
    sender: usize,
    /// Dense: current recipient. Sparse: current slot in the sender's lane.
    slot: usize,
    /// Position within the current queue.
    entry: usize,
}

impl<'a> Iterator for PendingIter<'a> {
    type Item = (ProcessorId, ProcessorId, &'a Payload);

    fn next(&mut self) -> Option<Self::Item> {
        let n = self.buf.n;
        match &self.buf.layout {
            Layout::Dense(channels) => loop {
                if self.sender >= n {
                    return None;
                }
                let queue = &channels[self.sender * n + self.slot];
                if let Some(e) = queue.get(self.entry) {
                    let item = (
                        ProcessorId::new(self.sender),
                        ProcessorId::new(self.slot),
                        self.buf.resolve(e),
                    );
                    self.entry += 1;
                    return Some(item);
                }
                self.entry = 0;
                self.slot += 1;
                if self.slot >= n {
                    self.slot = 0;
                    self.sender += 1;
                }
            },
            Layout::Sparse { lanes, .. } => loop {
                let lane = lanes.get(self.sender)?;
                if lane.pending == 0 || self.slot >= lane.recipients.len() {
                    self.sender += 1;
                    self.slot = 0;
                    self.entry = 0;
                    continue;
                }
                if let Some(e) = lane.queues[self.slot].get(self.entry) {
                    let item = (
                        ProcessorId::new(self.sender),
                        ProcessorId::new(lane.recipients[self.slot] as usize),
                        self.buf.resolve(e),
                    );
                    self.entry += 1;
                    return Some(item);
                }
                self.slot += 1;
                self.entry = 0;
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agreement_model::Bit;

    fn env(from: usize, to: usize, round: u64) -> Envelope {
        Envelope::new(
            ProcessorId::new(from),
            ProcessorId::new(to),
            Payload::Report {
                round,
                value: Bit::Zero,
            },
        )
    }

    #[test]
    fn enqueue_then_pop_is_fifo_per_channel() {
        let mut buf = MessageBuffer::new();
        buf.enqueue(env(0, 1, 1));
        buf.enqueue(env(0, 1, 2));
        buf.enqueue(env(2, 1, 9));
        assert_eq!(buf.pending_on(ProcessorId::new(0), ProcessorId::new(1)), 2);
        let first = buf.pop(ProcessorId::new(0), ProcessorId::new(1)).unwrap();
        assert_eq!(first.round(), Some(1));
        let second = buf.pop(ProcessorId::new(0), ProcessorId::new(1)).unwrap();
        assert_eq!(second.round(), Some(2));
        assert!(buf.pop(ProcessorId::new(0), ProcessorId::new(1)).is_none());
        // The other channel is untouched.
        assert_eq!(buf.pending_on(ProcessorId::new(2), ProcessorId::new(1)), 1);
    }

    #[test]
    fn chain_tags_ride_along_with_their_messages() {
        let mut buf = MessageBuffer::new();
        buf.enqueue_with_chain(env(0, 1, 1), 4);
        buf.enqueue_with_chain(env(0, 1, 2), 9);
        let (first, chain) = buf
            .pop_with_chain(ProcessorId::new(0), ProcessorId::new(1))
            .unwrap();
        assert_eq!(first.round(), Some(1));
        assert_eq!(chain, 4);
        let (_, chain) = buf
            .pop_with_chain(ProcessorId::new(0), ProcessorId::new(1))
            .unwrap();
        assert_eq!(chain, 9);
    }

    #[test]
    fn send_time_stamps_follow_the_buffer_clock() {
        let mut buf = MessageBuffer::with_processors(2);
        buf.enqueue(env(0, 1, 1));
        buf.set_now(7);
        buf.enqueue(env(0, 1, 2));
        assert_eq!(
            buf.head_sent_at(ProcessorId::new(0), ProcessorId::new(1)),
            Some(0)
        );
        buf.pop(ProcessorId::new(0), ProcessorId::new(1));
        assert_eq!(
            buf.head_sent_at(ProcessorId::new(0), ProcessorId::new(1)),
            Some(7)
        );
        buf.pop(ProcessorId::new(0), ProcessorId::new(1));
        assert_eq!(
            buf.head_sent_at(ProcessorId::new(0), ProcessorId::new(1)),
            None
        );
        // Reset rewinds the clock with everything else.
        buf.set_now(9);
        buf.reset(2);
        buf.enqueue(env(0, 1, 3));
        assert_eq!(
            buf.head_sent_at(ProcessorId::new(0), ProcessorId::new(1)),
            Some(0)
        );
    }

    #[test]
    fn drain_channel_removes_everything_in_order() {
        let mut buf = MessageBuffer::new();
        for r in 1..=3 {
            buf.enqueue(env(4, 2, r));
        }
        let drained = buf.drain_channel(ProcessorId::new(4), ProcessorId::new(2));
        assert_eq!(drained.len(), 3);
        assert_eq!(drained[0].round(), Some(1));
        assert_eq!(drained[2].round(), Some(3));
        assert!(buf.is_empty());
        assert_eq!(buf.delivered_count(), 3);
    }

    #[test]
    fn drain_of_missing_channel_is_empty() {
        let mut buf = MessageBuffer::new();
        assert!(buf
            .drain_channel(ProcessorId::new(0), ProcessorId::new(1))
            .is_empty());
    }

    #[test]
    fn drain_channel_into_reuses_a_scratch_buffer() {
        let mut buf = MessageBuffer::with_processors(3);
        let mut scratch = Vec::new();
        for r in 1..=3 {
            buf.enqueue(env(0, 1, r));
        }
        buf.drain_channel_into(ProcessorId::new(0), ProcessorId::new(1), &mut scratch);
        assert_eq!(scratch.len(), 3);
        assert_eq!(scratch[0].round(), Some(1));
        scratch.clear();
        buf.enqueue(env(0, 1, 9));
        buf.drain_channel_into(ProcessorId::new(0), ProcessorId::new(1), &mut scratch);
        assert_eq!(scratch.len(), 1);
        assert_eq!(scratch[0].round(), Some(9));
    }

    #[test]
    fn drop_to_discards_only_that_recipient() {
        let mut buf = MessageBuffer::new();
        buf.enqueue(env(0, 1, 1));
        buf.enqueue(env(0, 2, 1));
        buf.drop_to(ProcessorId::new(1));
        assert_eq!(buf.pending_on(ProcessorId::new(0), ProcessorId::new(1)), 0);
        assert_eq!(buf.pending_on(ProcessorId::new(0), ProcessorId::new(2)), 1);
        assert_eq!(buf.dropped_count(), 1);
    }

    #[test]
    fn corrupt_head_replaces_payload_in_place() {
        let mut buf = MessageBuffer::new();
        buf.enqueue_with_chain(env(3, 0, 5), 7);
        let original = buf
            .corrupt_head(
                ProcessorId::new(3),
                ProcessorId::new(0),
                Payload::Report {
                    round: 5,
                    value: Bit::One,
                },
            )
            .unwrap();
        assert_eq!(original.advocated_value(), Some(Bit::Zero));
        let now = buf.peek(ProcessorId::new(3), ProcessorId::new(0)).unwrap();
        assert_eq!(now.advocated_value(), Some(Bit::One));
        // Corruption rewrites contents, not causality: the tag is preserved.
        let (_, chain) = buf
            .pop_with_chain(ProcessorId::new(3), ProcessorId::new(0))
            .unwrap();
        assert_eq!(chain, 7);
    }

    #[test]
    fn senders_with_pending_lists_only_nonempty_channels() {
        let mut buf = MessageBuffer::new();
        buf.enqueue(env(0, 5, 1));
        buf.enqueue(env(3, 5, 1));
        buf.enqueue(env(3, 6, 1));
        let senders: Vec<ProcessorId> = buf.senders_with_pending(ProcessorId::new(5)).collect();
        assert_eq!(senders, vec![ProcessorId::new(0), ProcessorId::new(3)]);
    }

    #[test]
    fn iter_visits_every_pending_message() {
        let mut buf = MessageBuffer::new();
        buf.enqueue(env(0, 1, 1));
        buf.enqueue(env(1, 0, 2));
        buf.enqueue(env(1, 0, 3));
        assert_eq!(buf.iter().count(), 3);
        assert_eq!(buf.pending_total(), 3);
        assert_eq!(buf.enqueued_count(), 3);
    }

    #[test]
    fn iter_is_sender_major_like_the_old_btree_layout() {
        let mut buf = MessageBuffer::new();
        buf.enqueue(env(2, 0, 1));
        buf.enqueue(env(0, 2, 2));
        buf.enqueue(env(0, 1, 3));
        buf.enqueue(env(1, 0, 4));
        let order: Vec<(usize, usize)> = buf
            .iter()
            .map(|(from, to, _)| (from.index(), to.index()))
            .collect();
        assert_eq!(order, vec![(0, 1), (0, 2), (1, 0), (2, 0)]);
    }

    #[test]
    fn presized_buffer_handles_out_of_range_queries_gracefully() {
        let mut buf = MessageBuffer::with_processors(2);
        buf.enqueue(env(0, 1, 1));
        assert_eq!(buf.pending_on(ProcessorId::new(5), ProcessorId::new(0)), 0);
        assert!(buf.peek(ProcessorId::new(0), ProcessorId::new(9)).is_none());
        assert!(buf.pop(ProcessorId::new(9), ProcessorId::new(0)).is_none());
        assert_eq!(buf.senders_with_pending(ProcessorId::new(7)).count(), 0);
        buf.drop_to(ProcessorId::new(42));
        assert_eq!(buf.pending_total(), 1);
    }

    #[test]
    fn lazily_grown_buffer_matches_presized_behaviour() {
        let mut lazy = MessageBuffer::new();
        let mut sized = MessageBuffer::with_processors(6);
        for (from, to, round) in [(0, 1, 1), (5, 2, 2), (2, 5, 3), (0, 1, 4)] {
            lazy.enqueue(env(from, to, round));
            sized.enqueue(env(from, to, round));
        }
        let l: Vec<_> = lazy.iter().map(|(f, t, p)| (f, t, p.round())).collect();
        let s: Vec<_> = sized.iter().map(|(f, t, p)| (f, t, p.round())).collect();
        assert_eq!(l, s);
        assert_eq!(lazy.pending_total(), sized.pending_total());
    }

    #[test]
    fn unicasts_never_touch_the_arena() {
        let mut buf = MessageBuffer::with_processors(3);
        for round in 1..=5 {
            buf.enqueue(env(0, 1, round));
        }
        assert_eq!(buf.pending_total(), 5);
        assert_eq!(
            buf.distinct_payloads(),
            0,
            "inline unicasts allocate no arena slots"
        );
        for round in 1..=5 {
            let (popped, _) = buf
                .pop_message(ProcessorId::new(0), ProcessorId::new(1))
                .unwrap();
            match popped {
                PoppedPayload::Inline(payload) => assert_eq!(payload.round(), Some(round)),
                PoppedPayload::Shared(_) => panic!("unicast must pop inline"),
            }
        }
        assert_eq!(buf.delivered_count(), 5);
    }

    #[test]
    fn broadcast_shares_one_arena_slot_across_recipients() {
        let mut buf = MessageBuffer::with_processors(4);
        let handle = buf.intern(Payload::Report {
            round: 1,
            value: Bit::One,
        });
        for to in ProcessorId::all(4) {
            buf.enqueue_ref(ProcessorId::new(0), to, handle, 1);
        }
        assert_eq!(buf.pending_total(), 4, "four queue entries");
        assert_eq!(buf.distinct_payloads(), 1, "one stored payload");
        assert_eq!(buf.enqueued_count(), 4);
        // Every recipient resolves the same contents.
        for to in ProcessorId::all(4) {
            let (p, chain) = buf.pop_with_chain(ProcessorId::new(0), to).unwrap();
            assert_eq!(p.round(), Some(1));
            assert_eq!(chain, 1);
        }
        assert_eq!(buf.distinct_payloads(), 0, "slot retired with last pop");
        assert_eq!(buf.delivered_count(), 4);
    }

    #[test]
    fn corrupting_a_shared_head_leaves_other_recipients_untouched() {
        let mut buf = MessageBuffer::with_processors(3);
        let handle = buf.intern(Payload::Report {
            round: 1,
            value: Bit::Zero,
        });
        for to in ProcessorId::all(3) {
            buf.enqueue_ref(ProcessorId::new(0), to, handle, 2);
        }
        let original = buf
            .corrupt_head(
                ProcessorId::new(0),
                ProcessorId::new(1),
                Payload::Report {
                    round: 1,
                    value: Bit::One,
                },
            )
            .unwrap();
        assert_eq!(original.advocated_value(), Some(Bit::Zero));
        // Recipient 1 sees the corruption; 0 and 2 see the original.
        let corrupted = buf.pop(ProcessorId::new(0), ProcessorId::new(1)).unwrap();
        assert_eq!(corrupted.advocated_value(), Some(Bit::One));
        for to in [ProcessorId::new(0), ProcessorId::new(2)] {
            let p = buf.pop(ProcessorId::new(0), to).unwrap();
            assert_eq!(p.advocated_value(), Some(Bit::Zero));
        }
        assert_eq!(buf.distinct_payloads(), 0);
    }

    #[test]
    fn arena_recycles_slots_through_the_free_list() {
        let mut buf = MessageBuffer::with_processors(2);
        for round in 1..=10 {
            let handle = buf.intern(Payload::Report {
                round,
                value: Bit::Zero,
            });
            buf.enqueue_ref(ProcessorId::new(0), ProcessorId::new(1), handle, 1);
            let (p, _) = buf
                .pop_with_chain(ProcessorId::new(0), ProcessorId::new(1))
                .unwrap();
            assert_eq!(p.round(), Some(round));
            assert_eq!(
                buf.distinct_payloads(),
                0,
                "slot freed as soon as the only reference is popped"
            );
        }
    }

    #[test]
    fn shared_pop_release_round_trip_keeps_payload_borrowable() {
        let mut buf = MessageBuffer::with_processors(2);
        let handle = buf.intern(Payload::Report {
            round: 7,
            value: Bit::Zero,
        });
        buf.enqueue_ref(ProcessorId::new(1), ProcessorId::new(0), handle, 3);
        let (popped, chain) = buf
            .pop_message(ProcessorId::new(1), ProcessorId::new(0))
            .unwrap();
        assert_eq!(chain, 3);
        let PoppedPayload::Shared(handle) = popped else {
            panic!("broadcast entries pop as shared handles");
        };
        assert_eq!(buf.payload(handle).round(), Some(7));
        buf.release(handle);
        assert_eq!(buf.distinct_payloads(), 0);
        assert_eq!(buf.delivered_count(), 1);
    }

    #[test]
    fn reset_clears_messages_arena_and_counters_but_keeps_layout() {
        let mut buf = MessageBuffer::with_processors(3);
        buf.enqueue(env(0, 1, 1));
        buf.enqueue(env(2, 0, 2));
        buf.pop(ProcessorId::new(0), ProcessorId::new(1));
        buf.reset(3);
        assert!(buf.is_empty());
        assert_eq!(buf.distinct_payloads(), 0);
        assert_eq!(buf.enqueued_count(), 0);
        assert_eq!(buf.delivered_count(), 0);
        assert_eq!(buf.dropped_count(), 0);
        // Still usable for the same n without growth.
        buf.enqueue(env(2, 2, 1));
        assert_eq!(buf.pending_on(ProcessorId::new(2), ProcessorId::new(2)), 1);
        // Re-shaping to a different n works too.
        buf.reset(5);
        buf.enqueue(env(4, 4, 1));
        assert_eq!(buf.pending_on(ProcessorId::new(4), ProcessorId::new(4)), 1);
    }

    #[test]
    fn auto_choice_switches_layout_at_the_threshold() {
        assert!(!MessageBuffer::with_processors(BufferChoice::DENSE_MAX).is_sparse());
        assert!(MessageBuffer::with_processors(BufferChoice::DENSE_MAX + 1).is_sparse());
        let mut buf = MessageBuffer::with_processors(8);
        assert!(!buf.is_sparse());
        buf.set_choice(BufferChoice::Sparse);
        assert!(buf.is_sparse());
        assert_eq!(buf.choice(), BufferChoice::Sparse);
        buf.enqueue(env(0, 1, 1));
        buf.reset(8);
        assert!(buf.is_sparse(), "reset keeps the explicit choice");
        buf.set_choice(BufferChoice::Auto);
        assert!(!buf.is_sparse(), "auto at n = 8 is dense again");
    }

    #[test]
    fn sparse_matches_dense_on_mixed_traffic() {
        let n = 6;
        let mut dense = MessageBuffer::with_choice(n, BufferChoice::Dense);
        let mut sparse = MessageBuffer::with_choice(n, BufferChoice::Sparse);
        for buf in [&mut dense, &mut sparse] {
            buf.enqueue(env(2, 0, 1));
            buf.enqueue(env(0, 2, 2));
            buf.enqueue(env(0, 1, 3));
            buf.enqueue_with_chain(env(1, 0, 4), 9);
            let h = buf.intern(Payload::Report {
                round: 5,
                value: Bit::One,
            });
            for to in ProcessorId::all(n) {
                buf.enqueue_ref(ProcessorId::new(3), to, h, 1);
            }
            buf.pop(ProcessorId::new(0), ProcessorId::new(2));
            buf.drop_to(ProcessorId::new(0));
        }
        let d: Vec<_> = dense.iter().map(|(f, t, p)| (f, t, p.round())).collect();
        let s: Vec<_> = sparse.iter().map(|(f, t, p)| (f, t, p.round())).collect();
        assert_eq!(d, s, "identical sender-major iteration on both layouts");
        assert_eq!(dense.pending_total(), sparse.pending_total());
        assert_eq!(dense.enqueued_count(), sparse.enqueued_count());
        assert_eq!(dense.delivered_count(), sparse.delivered_count());
        assert_eq!(dense.dropped_count(), sparse.dropped_count());
        assert_eq!(dense.distinct_payloads(), sparse.distinct_payloads());
        for to in ProcessorId::all(n) {
            let ds: Vec<_> = dense.senders_with_pending(to).collect();
            let ss: Vec<_> = sparse.senders_with_pending(to).collect();
            assert_eq!(ds, ss);
            for from in ProcessorId::all(n) {
                assert_eq!(dense.pending_on(from, to), sparse.pending_on(from, to));
                assert_eq!(
                    dense.peek(from, to).map(Payload::round),
                    sparse.peek(from, to).map(Payload::round)
                );
                assert_eq!(dense.head_sent_at(from, to), sparse.head_sent_at(from, to));
            }
        }
    }

    #[test]
    fn sparse_buffer_handles_out_of_range_queries_gracefully() {
        let mut buf = MessageBuffer::with_choice(2, BufferChoice::Sparse);
        buf.enqueue(env(0, 1, 1));
        assert_eq!(buf.pending_on(ProcessorId::new(5), ProcessorId::new(0)), 0);
        assert!(buf.peek(ProcessorId::new(0), ProcessorId::new(9)).is_none());
        assert!(buf.pop(ProcessorId::new(9), ProcessorId::new(0)).is_none());
        assert_eq!(buf.senders_with_pending(ProcessorId::new(7)).count(), 0);
        buf.drop_to(ProcessorId::new(42));
        assert_eq!(buf.pending_total(), 1);
    }

    #[test]
    fn sparse_reset_clears_state_but_keeps_the_lanes_warm() {
        let mut buf = MessageBuffer::with_choice(4, BufferChoice::Sparse);
        buf.enqueue(env(0, 1, 1));
        buf.enqueue(env(2, 3, 2));
        buf.pop(ProcessorId::new(0), ProcessorId::new(1));
        buf.reset(4);
        assert!(buf.is_sparse());
        assert!(buf.is_empty());
        assert_eq!(buf.distinct_payloads(), 0);
        assert_eq!(buf.enqueued_count(), 0);
        assert_eq!(buf.delivered_count(), 0);
        assert_eq!(buf.dropped_count(), 0);
        assert!(
            buf.next_pending_channel(4, 0).is_none(),
            "live bits cleared"
        );
        buf.enqueue(env(2, 3, 7));
        assert_eq!(buf.pending_on(ProcessorId::new(2), ProcessorId::new(3)), 1);
        // Re-shaping to a different n works and keeps the choice.
        buf.reset(9);
        assert!(buf.is_sparse());
        buf.enqueue(env(8, 8, 1));
        assert_eq!(buf.pending_on(ProcessorId::new(8), ProcessorId::new(8)), 1);
    }

    #[test]
    fn multicast_interns_once_and_costs_only_the_recipient_set() {
        let mut buf = MessageBuffer::with_processors(1000);
        assert!(buf.is_sparse());
        let committee: Vec<ProcessorId> = [3usize, 71, 512]
            .iter()
            .map(|&i| ProcessorId::new(i))
            .collect();
        buf.multicast(
            ProcessorId::new(71),
            &committee,
            Payload::Report {
                round: 1,
                value: Bit::One,
            },
            2,
        );
        assert_eq!(buf.pending_total(), 3);
        assert_eq!(
            buf.distinct_payloads(),
            1,
            "one interned payload for the set"
        );
        let targets: Vec<usize> = buf.iter().map(|(_, to, _)| to.index()).collect();
        assert_eq!(targets, vec![3, 71, 512]);
        for &to in &committee {
            let (p, chain) = buf.pop_with_chain(ProcessorId::new(71), to).unwrap();
            assert_eq!(p.round(), Some(1));
            assert_eq!(chain, 2);
        }
        assert_eq!(buf.distinct_payloads(), 0, "slot retired with the last pop");
    }

    #[test]
    fn multicast_to_one_or_zero_recipients_skips_the_arena() {
        let mut buf = MessageBuffer::with_processors(100);
        buf.multicast(
            ProcessorId::new(0),
            &[],
            Payload::Report {
                round: 1,
                value: Bit::Zero,
            },
            0,
        );
        assert!(buf.is_empty());
        assert_eq!(buf.enqueued_count(), 0, "empty set is a no-op");
        buf.multicast(
            ProcessorId::new(0),
            &[ProcessorId::new(9)],
            Payload::Report {
                round: 2,
                value: Bit::One,
            },
            5,
        );
        assert_eq!(buf.pending_total(), 1);
        assert_eq!(
            buf.distinct_payloads(),
            0,
            "singleton multicast stays inline"
        );
        let (p, chain) = buf
            .pop_with_chain(ProcessorId::new(0), ProcessorId::new(9))
            .unwrap();
        assert_eq!(p.round(), Some(2));
        assert_eq!(chain, 5);
    }

    #[test]
    fn sparse_scan_matches_the_dense_scan_at_every_cursor() {
        let n = 9;
        let mut dense = MessageBuffer::with_choice(n, BufferChoice::Dense);
        let mut sparse = MessageBuffer::with_choice(n, BufferChoice::Sparse);
        let traffic = [
            (0, 3),
            (0, 3),
            (2, 7),
            (4, 1),
            (4, 5),
            (8, 0),
            (8, 8),
            (5, 4),
        ];
        for &(s, r) in &traffic {
            dense.enqueue(env(s, r, 1));
            sparse.enqueue(env(s, r, 1));
        }
        // Leave some materialized-but-empty sparse queues behind.
        for buf in [&mut dense, &mut sparse] {
            buf.pop(ProcessorId::new(2), ProcessorId::new(7));
            buf.pop(ProcessorId::new(4), ProcessorId::new(1));
        }
        let admit = |from: ProcessorId, to: ProcessorId| from.index() != 8 && to.index() != 3;
        for cursor in 0..n * n {
            assert_eq!(
                dense.next_pending_channel(n, cursor),
                sparse.next_pending_channel(n, cursor),
                "cursor {cursor}"
            );
            assert_eq!(
                dense.next_pending_channel_where(n, cursor, admit),
                sparse.next_pending_channel_where(n, cursor, admit),
                "cursor {cursor} with admit"
            );
        }
    }

    #[test]
    fn scan_pop_round_robin_drains_both_layouts_identically() {
        let n = 70; // sparse is the Auto choice out here
        let mut dense = MessageBuffer::with_choice(n, BufferChoice::Dense);
        let mut auto = MessageBuffer::with_processors(n);
        assert!(auto.is_sparse());
        for s in [0usize, 13, 13, 42, 69] {
            for r in [5usize, 5, 31, 68] {
                dense.enqueue(env(s, r, (s + r) as u64));
                auto.enqueue(env(s, r, (s + r) as u64));
            }
        }
        let mut cursor = 0;
        loop {
            let d = dense.next_pending_channel(n, cursor);
            let s = auto.next_pending_channel(n, cursor);
            assert_eq!(d, s);
            match d {
                None => break,
                Some((next, from, to)) => {
                    cursor = next;
                    assert_eq!(dense.pop(from, to), auto.pop(from, to));
                }
            }
        }
        assert!(dense.is_empty() && auto.is_empty());
    }

    #[test]
    fn drop_to_keeps_the_sparse_scan_honest() {
        let n = 80;
        let mut buf = MessageBuffer::with_processors(n);
        assert!(buf.is_sparse());
        buf.enqueue(env(10, 40, 1));
        buf.enqueue(env(64, 40, 2));
        buf.enqueue(env(64, 41, 3));
        buf.drop_to(ProcessorId::new(40));
        assert_eq!(buf.dropped_count(), 2);
        let hit = buf.next_pending_channel(n, 0);
        assert_eq!(
            hit.map(|(_, f, t)| (f.index(), t.index())),
            Some((64, 41)),
            "sender 10's lane went idle with the drop; the scan skips it"
        );
        buf.pop(ProcessorId::new(64), ProcessorId::new(41));
        assert!(buf.next_pending_channel(n, 0).is_none());
    }

    #[test]
    fn sparse_layout_allocates_no_quadratic_state_up_front() {
        let n = 10_000;
        let buf = MessageBuffer::with_processors(n);
        assert!(buf.is_sparse());
        let Layout::Sparse { lanes, live } = &buf.layout else {
            panic!("auto layout at n = 10000 must be sparse");
        };
        assert_eq!(lanes.len(), n, "one lane per sender, no n * n grid");
        assert_eq!(live.len(), n.div_ceil(64));
        assert!(
            lanes.iter().all(|lane| lane.recipients.is_empty()),
            "queues materialize lazily, on first send"
        );
    }
}

//! The message buffer: per-channel FIFO queues of undelivered messages.
//!
//! The paper's model places sent messages into a "message buffer" from which
//! the adversary chooses what to deliver and when. We keep one FIFO queue per
//! ordered `(sender, recipient)` pair — the dedicated channel of the model —
//! so a recipient always correctly identifies the sender, and messages on a
//! single channel are delivered in order (a harmless strengthening; the
//! adversary still fully controls interleaving across channels).
//!
//! The `n * n` channels are stored as one flat `Vec` of queues indexed by
//! `sender * n + recipient` (sender-major). Channel access on the hot
//! enqueue/dequeue path is therefore a single index computation — no tree
//! walk, no rebalancing, no per-channel allocation after construction — and
//! whole-buffer scans (`iter`, `discard_undelivered`, `drop_to`) are linear
//! passes over a contiguous array. Iteration order is sender-major then
//! recipient, identical to the `(sender, recipient)`-keyed ordering of the
//! previous `BTreeMap` layout.
//!
//! Each buffered message carries a *chain tag*: the causal depth assigned at
//! send time (the length of the longest message chain ending in the send).
//! The asynchronous scheduler uses the tags to measure running time as the
//! paper's Section 5 does; window executions ignore them.

use std::collections::VecDeque;

use agreement_model::{Envelope, Payload, ProcessorId};

/// One buffered message: the payload plus its causal chain tag.
#[derive(Debug, Clone)]
struct Buffered {
    payload: Payload,
    chain: u64,
}

/// A FIFO buffer of undelivered messages with one flat queue per ordered
/// `(sender, recipient)` channel.
#[derive(Debug, Clone, Default)]
pub struct MessageBuffer {
    /// Number of processors the flat layout currently covers.
    n: usize,
    /// `n * n` queues, channel `(s, r)` at index `s * n + r`.
    channels: Vec<VecDeque<Buffered>>,
    enqueued: u64,
    delivered: u64,
    dropped: u64,
}

impl MessageBuffer {
    /// Creates an empty buffer. The channel array grows on demand; prefer
    /// [`MessageBuffer::with_processors`] when `n` is known up front so the
    /// hot path never reallocates.
    pub fn new() -> Self {
        MessageBuffer::default()
    }

    /// Creates an empty buffer pre-sized for `n` processors (`n * n` channels).
    pub fn with_processors(n: usize) -> Self {
        MessageBuffer {
            n,
            channels: vec![VecDeque::new(); n * n],
            enqueued: 0,
            delivered: 0,
            dropped: 0,
        }
    }

    /// Flat index of the channel `sender -> recipient`, if both are covered by
    /// the current layout.
    #[inline]
    fn index(&self, sender: ProcessorId, recipient: ProcessorId) -> Option<usize> {
        let (s, r) = (sender.index(), recipient.index());
        if s < self.n && r < self.n {
            Some(s * self.n + r)
        } else {
            None
        }
    }

    /// Grows the layout so processor `id` is covered, remapping the existing
    /// queues into the wider sender-major grid. Only reachable through
    /// `enqueue` on a buffer built with [`MessageBuffer::new`]; engine-owned
    /// buffers are pre-sized and never take this path.
    fn ensure_covers(&mut self, id: usize) {
        if id < self.n {
            return;
        }
        let new_n = id + 1;
        let mut channels = vec![VecDeque::new(); new_n * new_n];
        for s in 0..self.n {
            for r in 0..self.n {
                channels[s * new_n + r] = std::mem::take(&mut self.channels[s * self.n + r]);
            }
        }
        self.n = new_n;
        self.channels = channels;
    }

    /// Places an envelope into the buffer with a zero chain tag.
    pub fn enqueue(&mut self, envelope: Envelope) {
        self.enqueue_with_chain(envelope, 0);
    }

    /// Places an envelope into the buffer, tagging it with the causal depth of
    /// its sending step.
    pub fn enqueue_with_chain(&mut self, envelope: Envelope, chain: u64) {
        self.ensure_covers(envelope.sender.index().max(envelope.recipient.index()));
        self.enqueued += 1;
        let idx = self
            .index(envelope.sender, envelope.recipient)
            .expect("layout covers both endpoints after ensure_covers");
        self.channels[idx].push_back(Buffered {
            payload: envelope.payload,
            chain,
        });
    }

    /// Removes and returns the oldest undelivered message from `sender` to
    /// `recipient`, if any.
    pub fn pop(&mut self, sender: ProcessorId, recipient: ProcessorId) -> Option<Payload> {
        self.pop_with_chain(sender, recipient)
            .map(|(payload, _)| payload)
    }

    /// Removes and returns the oldest undelivered message on the channel
    /// together with its chain tag.
    pub fn pop_with_chain(
        &mut self,
        sender: ProcessorId,
        recipient: ProcessorId,
    ) -> Option<(Payload, u64)> {
        let idx = self.index(sender, recipient)?;
        let entry = self.channels[idx].pop_front()?;
        self.delivered += 1;
        Some((entry.payload, entry.chain))
    }

    /// Removes and returns *all* undelivered messages from `sender` to
    /// `recipient`, oldest first.
    pub fn drain_channel(&mut self, sender: ProcessorId, recipient: ProcessorId) -> Vec<Payload> {
        match self.index(sender, recipient) {
            Some(idx) => {
                let drained = std::mem::take(&mut self.channels[idx]);
                self.delivered += drained.len() as u64;
                drained.into_iter().map(|entry| entry.payload).collect()
            }
            None => Vec::new(),
        }
    }

    /// Discards every undelivered message addressed to `recipient`.
    ///
    /// Used when a processor crashes: the model only requires delivery to
    /// processors that take infinitely many steps.
    pub fn drop_to(&mut self, recipient: ProcessorId) {
        let r = recipient.index();
        if r >= self.n {
            return;
        }
        for s in 0..self.n {
            let queue = &mut self.channels[s * self.n + r];
            self.dropped += queue.len() as u64;
            queue.clear();
        }
    }

    /// Replaces the payload of the oldest undelivered message on the channel,
    /// returning the original payload (the chain tag is preserved). Used to
    /// model Byzantine corruption of a message in flight (the adversary may
    /// corrupt messages *sent by* corrupted processors).
    pub fn corrupt_head(
        &mut self,
        sender: ProcessorId,
        recipient: ProcessorId,
        replacement: Payload,
    ) -> Option<Payload> {
        let idx = self.index(sender, recipient)?;
        let head = self.channels[idx].front_mut()?;
        Some(std::mem::replace(&mut head.payload, replacement))
    }

    /// Discards every undelivered message in the buffer, returning how many
    /// were dropped.
    ///
    /// The window scheduler calls this at the start of every sending phase: an
    /// acceptable window only delivers messages "just sent" within it, so
    /// anything left over from the previous window is never delivered.
    pub fn discard_undelivered(&mut self) -> usize {
        let mut count = 0;
        for queue in &mut self.channels {
            count += queue.len();
            queue.clear();
        }
        self.dropped += count as u64;
        count
    }

    /// Returns the number of undelivered messages from `sender` to `recipient`.
    #[inline]
    pub fn pending_on(&self, sender: ProcessorId, recipient: ProcessorId) -> usize {
        self.index(sender, recipient)
            .map_or(0, |idx| self.channels[idx].len())
    }

    /// Returns the oldest undelivered payload on the channel without removing it.
    pub fn peek(&self, sender: ProcessorId, recipient: ProcessorId) -> Option<&Payload> {
        self.index(sender, recipient)
            .and_then(|idx| self.channels[idx].front())
            .map(|entry| &entry.payload)
    }

    /// Iterates over all `(sender, recipient, payload)` triples currently buffered,
    /// sender-major and oldest-first within each channel.
    pub fn iter(&self) -> impl Iterator<Item = (ProcessorId, ProcessorId, &Payload)> + '_ {
        let n = self.n;
        self.channels
            .iter()
            .enumerate()
            .flat_map(move |(idx, queue)| {
                let from = ProcessorId::new(idx / n.max(1));
                let to = ProcessorId::new(idx % n.max(1));
                queue.iter().map(move |entry| (from, to, &entry.payload))
            })
    }

    /// The senders with at least one undelivered message to `recipient`, in
    /// identity order.
    pub fn senders_with_pending(
        &self,
        recipient: ProcessorId,
    ) -> impl Iterator<Item = ProcessorId> + '_ {
        let r = recipient.index();
        let covered = if r < self.n { self.n } else { 0 };
        (0..covered).filter_map(move |s| {
            if self.channels[s * self.n + r].is_empty() {
                None
            } else {
                Some(ProcessorId::new(s))
            }
        })
    }

    /// Total number of undelivered messages.
    pub fn pending_total(&self) -> usize {
        self.channels.iter().map(VecDeque::len).sum()
    }

    /// Returns `true` when no messages are awaiting delivery.
    pub fn is_empty(&self) -> bool {
        self.pending_total() == 0
    }

    /// Number of messages ever enqueued.
    pub fn enqueued_count(&self) -> u64 {
        self.enqueued
    }

    /// Number of messages ever delivered (popped or drained).
    pub fn delivered_count(&self) -> u64 {
        self.delivered
    }

    /// Number of messages dropped because their recipient crashed.
    pub fn dropped_count(&self) -> u64 {
        self.dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agreement_model::Bit;

    fn env(from: usize, to: usize, round: u64) -> Envelope {
        Envelope::new(
            ProcessorId::new(from),
            ProcessorId::new(to),
            Payload::Report {
                round,
                value: Bit::Zero,
            },
        )
    }

    #[test]
    fn enqueue_then_pop_is_fifo_per_channel() {
        let mut buf = MessageBuffer::new();
        buf.enqueue(env(0, 1, 1));
        buf.enqueue(env(0, 1, 2));
        buf.enqueue(env(2, 1, 9));
        assert_eq!(buf.pending_on(ProcessorId::new(0), ProcessorId::new(1)), 2);
        let first = buf.pop(ProcessorId::new(0), ProcessorId::new(1)).unwrap();
        assert_eq!(first.round(), Some(1));
        let second = buf.pop(ProcessorId::new(0), ProcessorId::new(1)).unwrap();
        assert_eq!(second.round(), Some(2));
        assert!(buf.pop(ProcessorId::new(0), ProcessorId::new(1)).is_none());
        // The other channel is untouched.
        assert_eq!(buf.pending_on(ProcessorId::new(2), ProcessorId::new(1)), 1);
    }

    #[test]
    fn chain_tags_ride_along_with_their_messages() {
        let mut buf = MessageBuffer::new();
        buf.enqueue_with_chain(env(0, 1, 1), 4);
        buf.enqueue_with_chain(env(0, 1, 2), 9);
        let (first, chain) = buf
            .pop_with_chain(ProcessorId::new(0), ProcessorId::new(1))
            .unwrap();
        assert_eq!(first.round(), Some(1));
        assert_eq!(chain, 4);
        let (_, chain) = buf
            .pop_with_chain(ProcessorId::new(0), ProcessorId::new(1))
            .unwrap();
        assert_eq!(chain, 9);
    }

    #[test]
    fn drain_channel_removes_everything_in_order() {
        let mut buf = MessageBuffer::new();
        for r in 1..=3 {
            buf.enqueue(env(4, 2, r));
        }
        let drained = buf.drain_channel(ProcessorId::new(4), ProcessorId::new(2));
        assert_eq!(drained.len(), 3);
        assert_eq!(drained[0].round(), Some(1));
        assert_eq!(drained[2].round(), Some(3));
        assert!(buf.is_empty());
        assert_eq!(buf.delivered_count(), 3);
    }

    #[test]
    fn drain_of_missing_channel_is_empty() {
        let mut buf = MessageBuffer::new();
        assert!(buf
            .drain_channel(ProcessorId::new(0), ProcessorId::new(1))
            .is_empty());
    }

    #[test]
    fn drop_to_discards_only_that_recipient() {
        let mut buf = MessageBuffer::new();
        buf.enqueue(env(0, 1, 1));
        buf.enqueue(env(0, 2, 1));
        buf.drop_to(ProcessorId::new(1));
        assert_eq!(buf.pending_on(ProcessorId::new(0), ProcessorId::new(1)), 0);
        assert_eq!(buf.pending_on(ProcessorId::new(0), ProcessorId::new(2)), 1);
        assert_eq!(buf.dropped_count(), 1);
    }

    #[test]
    fn corrupt_head_replaces_payload_in_place() {
        let mut buf = MessageBuffer::new();
        buf.enqueue_with_chain(env(3, 0, 5), 7);
        let original = buf
            .corrupt_head(
                ProcessorId::new(3),
                ProcessorId::new(0),
                Payload::Report {
                    round: 5,
                    value: Bit::One,
                },
            )
            .unwrap();
        assert_eq!(original.advocated_value(), Some(Bit::Zero));
        let now = buf.peek(ProcessorId::new(3), ProcessorId::new(0)).unwrap();
        assert_eq!(now.advocated_value(), Some(Bit::One));
        // Corruption rewrites contents, not causality: the tag is preserved.
        let (_, chain) = buf
            .pop_with_chain(ProcessorId::new(3), ProcessorId::new(0))
            .unwrap();
        assert_eq!(chain, 7);
    }

    #[test]
    fn senders_with_pending_lists_only_nonempty_channels() {
        let mut buf = MessageBuffer::new();
        buf.enqueue(env(0, 5, 1));
        buf.enqueue(env(3, 5, 1));
        buf.enqueue(env(3, 6, 1));
        let senders: Vec<ProcessorId> = buf.senders_with_pending(ProcessorId::new(5)).collect();
        assert_eq!(senders, vec![ProcessorId::new(0), ProcessorId::new(3)]);
    }

    #[test]
    fn iter_visits_every_pending_message() {
        let mut buf = MessageBuffer::new();
        buf.enqueue(env(0, 1, 1));
        buf.enqueue(env(1, 0, 2));
        buf.enqueue(env(1, 0, 3));
        assert_eq!(buf.iter().count(), 3);
        assert_eq!(buf.pending_total(), 3);
        assert_eq!(buf.enqueued_count(), 3);
    }

    #[test]
    fn iter_is_sender_major_like_the_old_btree_layout() {
        let mut buf = MessageBuffer::new();
        buf.enqueue(env(2, 0, 1));
        buf.enqueue(env(0, 2, 2));
        buf.enqueue(env(0, 1, 3));
        buf.enqueue(env(1, 0, 4));
        let order: Vec<(usize, usize)> = buf
            .iter()
            .map(|(from, to, _)| (from.index(), to.index()))
            .collect();
        assert_eq!(order, vec![(0, 1), (0, 2), (1, 0), (2, 0)]);
    }

    #[test]
    fn presized_buffer_handles_out_of_range_queries_gracefully() {
        let mut buf = MessageBuffer::with_processors(2);
        buf.enqueue(env(0, 1, 1));
        assert_eq!(buf.pending_on(ProcessorId::new(5), ProcessorId::new(0)), 0);
        assert!(buf.peek(ProcessorId::new(0), ProcessorId::new(9)).is_none());
        assert!(buf.pop(ProcessorId::new(9), ProcessorId::new(0)).is_none());
        assert_eq!(buf.senders_with_pending(ProcessorId::new(7)).count(), 0);
        buf.drop_to(ProcessorId::new(42));
        assert_eq!(buf.pending_total(), 1);
    }

    #[test]
    fn lazily_grown_buffer_matches_presized_behaviour() {
        let mut lazy = MessageBuffer::new();
        let mut sized = MessageBuffer::with_processors(6);
        for (from, to, round) in [(0, 1, 1), (5, 2, 2), (2, 5, 3), (0, 1, 4)] {
            lazy.enqueue(env(from, to, round));
            sized.enqueue(env(from, to, round));
        }
        let l: Vec<_> = lazy.iter().map(|(f, t, p)| (f, t, p.round())).collect();
        let s: Vec<_> = sized.iter().map(|(f, t, p)| (f, t, p.round())).collect();
        assert_eq!(l, s);
        assert_eq!(lazy.pending_total(), sized.pending_total());
    }
}

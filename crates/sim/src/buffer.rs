//! The message buffer: per-channel FIFO queues of undelivered messages over a
//! shared per-trial payload arena.
//!
//! The paper's model places sent messages into a "message buffer" from which
//! the adversary chooses what to deliver and when. We keep one FIFO queue per
//! ordered `(sender, recipient)` pair — the dedicated channel of the model —
//! so a recipient always correctly identifies the sender, and messages on a
//! single channel are delivered in order (a harmless strengthening; the
//! adversary still fully controls interleaving across channels).
//!
//! The `n * n` channels are stored as one flat `Vec` of queues indexed by
//! `sender * n + recipient` (sender-major). Channel access on the hot
//! enqueue/dequeue path is therefore a single index computation — no tree
//! walk, no rebalancing, no per-channel allocation after construction — and
//! whole-buffer scans (`iter`, `discard_undelivered`, `drop_to`) are linear
//! passes over a contiguous array. Iteration order is sender-major then
//! recipient, identical to the `(sender, recipient)`-keyed ordering of the
//! previous `BTreeMap` layout.
//!
//! # The payload arena
//!
//! Queue entries do not own their [`Payload`]s. Payload values live once in a
//! reference-counted **arena** owned by the buffer, and each entry carries a
//! 4-byte `Copy` handle ([`PayloadRef`]) plus its chain tag. This is what
//! makes broadcast cheap: an n-way broadcast interns its payload **once** and
//! enqueues n handles, where the previous layout cloned the payload per
//! recipient. Delivery resolves a handle to a borrowed `&Payload` — no move,
//! no clone — and releases the reference afterwards; a slot whose last
//! reference is released goes onto a free list and is recycled by the next
//! intern, so arena memory is bounded by the peak number of *distinct*
//! in-flight payloads, exactly like the owning layout it replaces.
//!
//! Each buffered message carries a *chain tag*: the causal depth assigned at
//! send time (the length of the longest message chain ending in the send).
//! The asynchronous scheduler uses the tags to measure running time as the
//! paper's Section 5 does; window executions ignore them.

use std::collections::VecDeque;

use agreement_model::{Envelope, Payload, ProcessorId};

/// A `Copy` handle to a payload stored in the buffer's arena.
///
/// Handles are only meaningful against the buffer that issued them, and only
/// between the `intern`/`pop_ref` that produced them and the `release` that
/// retires them; the buffer recycles slots whose last reference is released.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PayloadRef(u32);

/// One arena slot: a payload plus the number of queue entries (or popped,
/// not-yet-released handles) referencing it.
#[derive(Debug, Clone)]
struct Slot {
    payload: Payload,
    refs: u32,
}

/// The per-trial payload store: a slab of reference-counted slots with a free
/// list, so one broadcast payload serves all its recipients and retired slots
/// are recycled instead of reallocated.
#[derive(Debug, Clone, Default)]
struct PayloadArena {
    slots: Vec<Slot>,
    free: Vec<u32>,
}

impl PayloadArena {
    /// Stores `payload` with zero references (callers add one per enqueue).
    fn intern(&mut self, payload: Payload) -> PayloadRef {
        if let Some(idx) = self.free.pop() {
            let slot = &mut self.slots[idx as usize];
            slot.payload = payload;
            slot.refs = 0;
            PayloadRef(idx)
        } else {
            let idx = u32::try_from(self.slots.len()).expect("payload arena overflow");
            self.slots.push(Slot { payload, refs: 0 });
            PayloadRef(idx)
        }
    }

    fn retain(&mut self, handle: PayloadRef) {
        self.slots[handle.0 as usize].refs += 1;
    }

    fn get(&self, handle: PayloadRef) -> &Payload {
        &self.slots[handle.0 as usize].payload
    }

    /// Drops one reference; the slot is recycled once the last one goes.
    fn release(&mut self, handle: PayloadRef) {
        let slot = &mut self.slots[handle.0 as usize];
        debug_assert!(slot.refs > 0, "payload handle released more than once");
        slot.refs -= 1;
        if slot.refs == 0 {
            self.free.push(handle.0);
        }
    }

    /// Drops one reference and returns the payload by value: moved out when
    /// this was the last reference, cloned while others remain.
    fn release_take(&mut self, handle: PayloadRef) -> Payload {
        let slot = &mut self.slots[handle.0 as usize];
        debug_assert!(slot.refs > 0, "payload handle released more than once");
        slot.refs -= 1;
        if slot.refs == 0 {
            self.free.push(handle.0);
            std::mem::replace(&mut slot.payload, Payload::Opaque(Vec::new()))
        } else {
            slot.payload.clone()
        }
    }

    /// Number of live (referenced) payloads.
    fn live(&self) -> usize {
        self.slots.len() - self.free.len()
    }

    /// Drops every payload but keeps the slab and free-list capacity.
    fn clear(&mut self) {
        self.slots.clear();
        self.free.clear();
    }
}

/// One buffered message: a handle to its payload plus its causal chain tag.
#[derive(Debug, Clone, Copy)]
struct Buffered {
    payload: PayloadRef,
    chain: u64,
}

/// A FIFO buffer of undelivered messages with one flat queue per ordered
/// `(sender, recipient)` channel and a shared payload arena.
#[derive(Debug, Clone, Default)]
pub struct MessageBuffer {
    /// Number of processors the flat layout currently covers.
    n: usize,
    /// `n * n` queues, channel `(s, r)` at index `s * n + r`.
    channels: Vec<VecDeque<Buffered>>,
    arena: PayloadArena,
    enqueued: u64,
    delivered: u64,
    dropped: u64,
}

impl MessageBuffer {
    /// Creates an empty buffer. The channel array grows on demand; prefer
    /// [`MessageBuffer::with_processors`] when `n` is known up front so the
    /// hot path never reallocates.
    pub fn new() -> Self {
        MessageBuffer::default()
    }

    /// Creates an empty buffer pre-sized for `n` processors (`n * n` channels).
    pub fn with_processors(n: usize) -> Self {
        MessageBuffer {
            n,
            channels: vec![VecDeque::new(); n * n],
            arena: PayloadArena::default(),
            enqueued: 0,
            delivered: 0,
            dropped: 0,
        }
    }

    /// Clears the buffer for reuse by the next trial: empties every channel
    /// and the payload arena, zeroes the counters, and re-shapes the layout
    /// to `n` processors — all while keeping the channel array, queue and
    /// arena allocations warm. With an unchanged `n` this allocates nothing.
    pub fn reset(&mut self, n: usize) {
        if self.n == n {
            for queue in &mut self.channels {
                queue.clear();
            }
        } else {
            self.n = n;
            self.channels.clear();
            self.channels.resize(n * n, VecDeque::new());
        }
        self.arena.clear();
        self.enqueued = 0;
        self.delivered = 0;
        self.dropped = 0;
    }

    /// Flat index of the channel `sender -> recipient`, if both are covered by
    /// the current layout.
    #[inline]
    fn index(&self, sender: ProcessorId, recipient: ProcessorId) -> Option<usize> {
        let (s, r) = (sender.index(), recipient.index());
        if s < self.n && r < self.n {
            Some(s * self.n + r)
        } else {
            None
        }
    }

    /// Grows the layout so processor `id` is covered, remapping the existing
    /// queues into the wider sender-major grid. Only reachable through
    /// `enqueue` on a buffer built with [`MessageBuffer::new`]; engine-owned
    /// buffers are pre-sized and never take this path. Handles stay valid:
    /// the arena is untouched, only the queue grid is re-shaped.
    fn ensure_covers(&mut self, id: usize) {
        if id < self.n {
            return;
        }
        let new_n = id + 1;
        let mut channels = vec![VecDeque::new(); new_n * new_n];
        for s in 0..self.n {
            for r in 0..self.n {
                channels[s * new_n + r] = std::mem::take(&mut self.channels[s * self.n + r]);
            }
        }
        self.n = new_n;
        self.channels = channels;
    }

    /// Stores a payload in the arena without enqueueing it anywhere yet.
    ///
    /// This is the broadcast primitive: intern once, then
    /// [`MessageBuffer::enqueue_ref`] the returned handle per recipient. A
    /// handle that is never enqueued occupies its slot until the next
    /// [`MessageBuffer::reset`].
    pub fn intern(&mut self, payload: Payload) -> PayloadRef {
        self.arena.intern(payload)
    }

    /// Resolves a handle to its payload.
    pub fn payload(&self, handle: PayloadRef) -> &Payload {
        self.arena.get(handle)
    }

    /// Drops one reference to `handle` (the counterpart of
    /// [`MessageBuffer::pop_ref`]); the payload's slot is recycled when the
    /// last reference goes.
    pub fn release(&mut self, handle: PayloadRef) {
        self.arena.release(handle);
    }

    /// Number of distinct payloads currently alive in the arena. An n-way
    /// broadcast contributes **one**, which is the whole point.
    pub fn distinct_payloads(&self) -> usize {
        self.arena.live()
    }

    /// Places an envelope into the buffer with a zero chain tag.
    pub fn enqueue(&mut self, envelope: Envelope) {
        self.enqueue_with_chain(envelope, 0);
    }

    /// Places an envelope into the buffer, tagging it with the causal depth of
    /// its sending step.
    pub fn enqueue_with_chain(&mut self, envelope: Envelope, chain: u64) {
        let handle = self.arena.intern(envelope.payload);
        self.enqueue_ref(envelope.sender, envelope.recipient, handle, chain);
    }

    /// Enqueues one more reference to an interned payload on the channel
    /// `sender -> recipient`.
    pub fn enqueue_ref(
        &mut self,
        sender: ProcessorId,
        recipient: ProcessorId,
        payload: PayloadRef,
        chain: u64,
    ) {
        self.ensure_covers(sender.index().max(recipient.index()));
        self.enqueued += 1;
        self.arena.retain(payload);
        let idx = self
            .index(sender, recipient)
            .expect("layout covers both endpoints after ensure_covers");
        self.channels[idx].push_back(Buffered { payload, chain });
    }

    /// Removes and returns the oldest undelivered message from `sender` to
    /// `recipient`, if any.
    pub fn pop(&mut self, sender: ProcessorId, recipient: ProcessorId) -> Option<Payload> {
        self.pop_with_chain(sender, recipient)
            .map(|(payload, _)| payload)
    }

    /// Removes and returns the oldest undelivered message on the channel
    /// together with its chain tag.
    pub fn pop_with_chain(
        &mut self,
        sender: ProcessorId,
        recipient: ProcessorId,
    ) -> Option<(Payload, u64)> {
        let (handle, chain) = self.pop_ref(sender, recipient)?;
        Some((self.arena.release_take(handle), chain))
    }

    /// Removes the oldest undelivered message on the channel, handing the
    /// caller its payload handle and chain tag.
    ///
    /// The caller now owns one reference: resolve the payload with
    /// [`MessageBuffer::payload`] and retire the reference with
    /// [`MessageBuffer::release`] when done. This is the zero-copy delivery
    /// path — the payload never moves.
    pub fn pop_ref(
        &mut self,
        sender: ProcessorId,
        recipient: ProcessorId,
    ) -> Option<(PayloadRef, u64)> {
        let idx = self.index(sender, recipient)?;
        let entry = self.channels[idx].pop_front()?;
        self.delivered += 1;
        Some((entry.payload, entry.chain))
    }

    /// Removes and returns *all* undelivered messages from `sender` to
    /// `recipient`, oldest first.
    pub fn drain_channel(&mut self, sender: ProcessorId, recipient: ProcessorId) -> Vec<Payload> {
        let mut drained = Vec::new();
        while let Some((payload, _)) = self.pop_with_chain(sender, recipient) {
            drained.push(payload);
        }
        drained
    }

    /// Discards every undelivered message addressed to `recipient`.
    ///
    /// Used when a processor crashes: the model only requires delivery to
    /// processors that take infinitely many steps.
    pub fn drop_to(&mut self, recipient: ProcessorId) {
        let r = recipient.index();
        if r >= self.n {
            return;
        }
        let MessageBuffer {
            n,
            channels,
            arena,
            dropped,
            ..
        } = self;
        for s in 0..*n {
            for entry in channels[s * *n + r].drain(..) {
                arena.release(entry.payload);
                *dropped += 1;
            }
        }
    }

    /// Replaces the payload of the oldest undelivered message on the channel,
    /// returning the original payload (the chain tag is preserved). Used to
    /// model Byzantine corruption of a message in flight (the adversary may
    /// corrupt messages *sent by* corrupted processors).
    ///
    /// Corruption is per-entry: when the head shares its payload with other
    /// queue entries (a broadcast), only this entry is re-pointed at the
    /// replacement — the other recipients still see the original.
    pub fn corrupt_head(
        &mut self,
        sender: ProcessorId,
        recipient: ProcessorId,
        replacement: Payload,
    ) -> Option<Payload> {
        let idx = self.index(sender, recipient)?;
        self.channels[idx].front()?;
        let new_handle = self.arena.intern(replacement);
        self.arena.retain(new_handle);
        let head = self.channels[idx]
            .front_mut()
            .expect("head checked just above");
        let old_handle = std::mem::replace(&mut head.payload, new_handle);
        Some(self.arena.release_take(old_handle))
    }

    /// Discards every undelivered message in the buffer, returning how many
    /// were dropped.
    ///
    /// The window scheduler calls this at the start of every sending phase: an
    /// acceptable window only delivers messages "just sent" within it, so
    /// anything left over from the previous window is never delivered.
    pub fn discard_undelivered(&mut self) -> usize {
        let MessageBuffer {
            channels,
            arena,
            dropped,
            ..
        } = self;
        let mut count = 0;
        for queue in channels {
            count += queue.len();
            for entry in queue.drain(..) {
                arena.release(entry.payload);
            }
        }
        *dropped += count as u64;
        count
    }

    /// Returns the number of undelivered messages from `sender` to `recipient`.
    #[inline]
    pub fn pending_on(&self, sender: ProcessorId, recipient: ProcessorId) -> usize {
        self.index(sender, recipient)
            .map_or(0, |idx| self.channels[idx].len())
    }

    /// Returns the oldest undelivered payload on the channel without removing it.
    pub fn peek(&self, sender: ProcessorId, recipient: ProcessorId) -> Option<&Payload> {
        self.index(sender, recipient)
            .and_then(|idx| self.channels[idx].front())
            .map(|entry| self.arena.get(entry.payload))
    }

    /// Iterates over all `(sender, recipient, payload)` triples currently buffered,
    /// sender-major and oldest-first within each channel.
    pub fn iter(&self) -> impl Iterator<Item = (ProcessorId, ProcessorId, &Payload)> + '_ {
        let n = self.n;
        self.channels
            .iter()
            .enumerate()
            .flat_map(move |(idx, queue)| {
                let from = ProcessorId::new(idx / n.max(1));
                let to = ProcessorId::new(idx % n.max(1));
                queue
                    .iter()
                    .map(move |entry| (from, to, self.arena.get(entry.payload)))
            })
    }

    /// The senders with at least one undelivered message to `recipient`, in
    /// identity order.
    pub fn senders_with_pending(
        &self,
        recipient: ProcessorId,
    ) -> impl Iterator<Item = ProcessorId> + '_ {
        let r = recipient.index();
        let covered = if r < self.n { self.n } else { 0 };
        (0..covered).filter_map(move |s| {
            if self.channels[s * self.n + r].is_empty() {
                None
            } else {
                Some(ProcessorId::new(s))
            }
        })
    }

    /// Total number of undelivered messages.
    pub fn pending_total(&self) -> usize {
        self.channels.iter().map(VecDeque::len).sum()
    }

    /// Returns `true` when no messages are awaiting delivery.
    pub fn is_empty(&self) -> bool {
        self.pending_total() == 0
    }

    /// Number of messages ever enqueued.
    pub fn enqueued_count(&self) -> u64 {
        self.enqueued
    }

    /// Number of messages ever delivered (popped or drained).
    pub fn delivered_count(&self) -> u64 {
        self.delivered
    }

    /// Number of messages dropped because their recipient crashed.
    pub fn dropped_count(&self) -> u64 {
        self.dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agreement_model::Bit;

    fn env(from: usize, to: usize, round: u64) -> Envelope {
        Envelope::new(
            ProcessorId::new(from),
            ProcessorId::new(to),
            Payload::Report {
                round,
                value: Bit::Zero,
            },
        )
    }

    #[test]
    fn enqueue_then_pop_is_fifo_per_channel() {
        let mut buf = MessageBuffer::new();
        buf.enqueue(env(0, 1, 1));
        buf.enqueue(env(0, 1, 2));
        buf.enqueue(env(2, 1, 9));
        assert_eq!(buf.pending_on(ProcessorId::new(0), ProcessorId::new(1)), 2);
        let first = buf.pop(ProcessorId::new(0), ProcessorId::new(1)).unwrap();
        assert_eq!(first.round(), Some(1));
        let second = buf.pop(ProcessorId::new(0), ProcessorId::new(1)).unwrap();
        assert_eq!(second.round(), Some(2));
        assert!(buf.pop(ProcessorId::new(0), ProcessorId::new(1)).is_none());
        // The other channel is untouched.
        assert_eq!(buf.pending_on(ProcessorId::new(2), ProcessorId::new(1)), 1);
    }

    #[test]
    fn chain_tags_ride_along_with_their_messages() {
        let mut buf = MessageBuffer::new();
        buf.enqueue_with_chain(env(0, 1, 1), 4);
        buf.enqueue_with_chain(env(0, 1, 2), 9);
        let (first, chain) = buf
            .pop_with_chain(ProcessorId::new(0), ProcessorId::new(1))
            .unwrap();
        assert_eq!(first.round(), Some(1));
        assert_eq!(chain, 4);
        let (_, chain) = buf
            .pop_with_chain(ProcessorId::new(0), ProcessorId::new(1))
            .unwrap();
        assert_eq!(chain, 9);
    }

    #[test]
    fn drain_channel_removes_everything_in_order() {
        let mut buf = MessageBuffer::new();
        for r in 1..=3 {
            buf.enqueue(env(4, 2, r));
        }
        let drained = buf.drain_channel(ProcessorId::new(4), ProcessorId::new(2));
        assert_eq!(drained.len(), 3);
        assert_eq!(drained[0].round(), Some(1));
        assert_eq!(drained[2].round(), Some(3));
        assert!(buf.is_empty());
        assert_eq!(buf.delivered_count(), 3);
    }

    #[test]
    fn drain_of_missing_channel_is_empty() {
        let mut buf = MessageBuffer::new();
        assert!(buf
            .drain_channel(ProcessorId::new(0), ProcessorId::new(1))
            .is_empty());
    }

    #[test]
    fn drop_to_discards_only_that_recipient() {
        let mut buf = MessageBuffer::new();
        buf.enqueue(env(0, 1, 1));
        buf.enqueue(env(0, 2, 1));
        buf.drop_to(ProcessorId::new(1));
        assert_eq!(buf.pending_on(ProcessorId::new(0), ProcessorId::new(1)), 0);
        assert_eq!(buf.pending_on(ProcessorId::new(0), ProcessorId::new(2)), 1);
        assert_eq!(buf.dropped_count(), 1);
    }

    #[test]
    fn corrupt_head_replaces_payload_in_place() {
        let mut buf = MessageBuffer::new();
        buf.enqueue_with_chain(env(3, 0, 5), 7);
        let original = buf
            .corrupt_head(
                ProcessorId::new(3),
                ProcessorId::new(0),
                Payload::Report {
                    round: 5,
                    value: Bit::One,
                },
            )
            .unwrap();
        assert_eq!(original.advocated_value(), Some(Bit::Zero));
        let now = buf.peek(ProcessorId::new(3), ProcessorId::new(0)).unwrap();
        assert_eq!(now.advocated_value(), Some(Bit::One));
        // Corruption rewrites contents, not causality: the tag is preserved.
        let (_, chain) = buf
            .pop_with_chain(ProcessorId::new(3), ProcessorId::new(0))
            .unwrap();
        assert_eq!(chain, 7);
    }

    #[test]
    fn senders_with_pending_lists_only_nonempty_channels() {
        let mut buf = MessageBuffer::new();
        buf.enqueue(env(0, 5, 1));
        buf.enqueue(env(3, 5, 1));
        buf.enqueue(env(3, 6, 1));
        let senders: Vec<ProcessorId> = buf.senders_with_pending(ProcessorId::new(5)).collect();
        assert_eq!(senders, vec![ProcessorId::new(0), ProcessorId::new(3)]);
    }

    #[test]
    fn iter_visits_every_pending_message() {
        let mut buf = MessageBuffer::new();
        buf.enqueue(env(0, 1, 1));
        buf.enqueue(env(1, 0, 2));
        buf.enqueue(env(1, 0, 3));
        assert_eq!(buf.iter().count(), 3);
        assert_eq!(buf.pending_total(), 3);
        assert_eq!(buf.enqueued_count(), 3);
    }

    #[test]
    fn iter_is_sender_major_like_the_old_btree_layout() {
        let mut buf = MessageBuffer::new();
        buf.enqueue(env(2, 0, 1));
        buf.enqueue(env(0, 2, 2));
        buf.enqueue(env(0, 1, 3));
        buf.enqueue(env(1, 0, 4));
        let order: Vec<(usize, usize)> = buf
            .iter()
            .map(|(from, to, _)| (from.index(), to.index()))
            .collect();
        assert_eq!(order, vec![(0, 1), (0, 2), (1, 0), (2, 0)]);
    }

    #[test]
    fn presized_buffer_handles_out_of_range_queries_gracefully() {
        let mut buf = MessageBuffer::with_processors(2);
        buf.enqueue(env(0, 1, 1));
        assert_eq!(buf.pending_on(ProcessorId::new(5), ProcessorId::new(0)), 0);
        assert!(buf.peek(ProcessorId::new(0), ProcessorId::new(9)).is_none());
        assert!(buf.pop(ProcessorId::new(9), ProcessorId::new(0)).is_none());
        assert_eq!(buf.senders_with_pending(ProcessorId::new(7)).count(), 0);
        buf.drop_to(ProcessorId::new(42));
        assert_eq!(buf.pending_total(), 1);
    }

    #[test]
    fn lazily_grown_buffer_matches_presized_behaviour() {
        let mut lazy = MessageBuffer::new();
        let mut sized = MessageBuffer::with_processors(6);
        for (from, to, round) in [(0, 1, 1), (5, 2, 2), (2, 5, 3), (0, 1, 4)] {
            lazy.enqueue(env(from, to, round));
            sized.enqueue(env(from, to, round));
        }
        let l: Vec<_> = lazy.iter().map(|(f, t, p)| (f, t, p.round())).collect();
        let s: Vec<_> = sized.iter().map(|(f, t, p)| (f, t, p.round())).collect();
        assert_eq!(l, s);
        assert_eq!(lazy.pending_total(), sized.pending_total());
    }

    #[test]
    fn broadcast_shares_one_arena_slot_across_recipients() {
        let mut buf = MessageBuffer::with_processors(4);
        let handle = buf.intern(Payload::Report {
            round: 1,
            value: Bit::One,
        });
        for to in ProcessorId::all(4) {
            buf.enqueue_ref(ProcessorId::new(0), to, handle, 1);
        }
        assert_eq!(buf.pending_total(), 4, "four queue entries");
        assert_eq!(buf.distinct_payloads(), 1, "one stored payload");
        assert_eq!(buf.enqueued_count(), 4);
        // Every recipient resolves the same contents.
        for to in ProcessorId::all(4) {
            let (p, chain) = buf.pop_with_chain(ProcessorId::new(0), to).unwrap();
            assert_eq!(p.round(), Some(1));
            assert_eq!(chain, 1);
        }
        assert_eq!(buf.distinct_payloads(), 0, "slot retired with last pop");
        assert_eq!(buf.delivered_count(), 4);
    }

    #[test]
    fn corrupting_a_shared_head_leaves_other_recipients_untouched() {
        let mut buf = MessageBuffer::with_processors(3);
        let handle = buf.intern(Payload::Report {
            round: 1,
            value: Bit::Zero,
        });
        for to in ProcessorId::all(3) {
            buf.enqueue_ref(ProcessorId::new(0), to, handle, 2);
        }
        let original = buf
            .corrupt_head(
                ProcessorId::new(0),
                ProcessorId::new(1),
                Payload::Report {
                    round: 1,
                    value: Bit::One,
                },
            )
            .unwrap();
        assert_eq!(original.advocated_value(), Some(Bit::Zero));
        // Recipient 1 sees the corruption; 0 and 2 see the original.
        let corrupted = buf.pop(ProcessorId::new(0), ProcessorId::new(1)).unwrap();
        assert_eq!(corrupted.advocated_value(), Some(Bit::One));
        for to in [ProcessorId::new(0), ProcessorId::new(2)] {
            let p = buf.pop(ProcessorId::new(0), to).unwrap();
            assert_eq!(p.advocated_value(), Some(Bit::Zero));
        }
        assert_eq!(buf.distinct_payloads(), 0);
    }

    #[test]
    fn arena_recycles_slots_through_the_free_list() {
        let mut buf = MessageBuffer::with_processors(2);
        for round in 1..=10 {
            buf.enqueue(env(0, 1, round));
            let (p, _) = buf
                .pop_with_chain(ProcessorId::new(0), ProcessorId::new(1))
                .unwrap();
            assert_eq!(p.round(), Some(round));
            assert_eq!(
                buf.distinct_payloads(),
                0,
                "slot freed as soon as the only reference is popped"
            );
        }
    }

    #[test]
    fn pop_ref_release_round_trip_keeps_payload_borrowable() {
        let mut buf = MessageBuffer::with_processors(2);
        buf.enqueue_with_chain(env(1, 0, 7), 3);
        let (handle, chain) = buf
            .pop_ref(ProcessorId::new(1), ProcessorId::new(0))
            .unwrap();
        assert_eq!(chain, 3);
        assert_eq!(buf.payload(handle).round(), Some(7));
        buf.release(handle);
        assert_eq!(buf.distinct_payloads(), 0);
        assert_eq!(buf.delivered_count(), 1);
    }

    #[test]
    fn reset_clears_messages_arena_and_counters_but_keeps_layout() {
        let mut buf = MessageBuffer::with_processors(3);
        buf.enqueue(env(0, 1, 1));
        buf.enqueue(env(2, 0, 2));
        buf.pop(ProcessorId::new(0), ProcessorId::new(1));
        buf.reset(3);
        assert!(buf.is_empty());
        assert_eq!(buf.distinct_payloads(), 0);
        assert_eq!(buf.enqueued_count(), 0);
        assert_eq!(buf.delivered_count(), 0);
        assert_eq!(buf.dropped_count(), 0);
        // Still usable for the same n without growth.
        buf.enqueue(env(2, 2, 1));
        assert_eq!(buf.pending_on(ProcessorId::new(2), ProcessorId::new(2)), 1);
        // Re-shaping to a different n works too.
        buf.reset(5);
        buf.enqueue(env(4, 4, 1));
        assert_eq!(buf.pending_on(ProcessorId::new(4), ProcessorId::new(4)), 1);
    }
}

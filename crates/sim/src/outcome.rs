//! Run limits and run outcomes: what an execution produced.

use agreement_model::{Bit, InputAssignment, Trace};

use crate::metrics::Metrics;

/// Caps on how long an engine will run before giving up.
///
/// The paper's executions are infinite objects; an experiment must cut them
/// off. A run that hits its cap without every correct processor deciding is
/// reported as *not terminated within the limit* (which, for the exponential
/// lower-bound experiments, is precisely the interesting outcome).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunLimits {
    /// Maximum number of acceptable windows (window engine).
    pub max_windows: u64,
    /// Maximum number of individual steps (asynchronous engine).
    pub max_steps: u64,
}

impl RunLimits {
    /// Limits suitable for fast-terminating runs in unit tests.
    pub const fn small() -> Self {
        RunLimits {
            max_windows: 200,
            max_steps: 50_000,
        }
    }

    /// Limits suitable for experiment runs.
    pub const fn standard() -> Self {
        RunLimits {
            max_windows: 10_000,
            max_steps: 2_000_000,
        }
    }

    /// Creates limits with an explicit window cap (step cap scales with it).
    pub const fn windows(max_windows: u64) -> Self {
        RunLimits {
            max_windows,
            max_steps: max_windows.saturating_mul(1_000),
        }
    }

    /// Creates limits with an explicit step cap.
    pub const fn steps(max_steps: u64) -> Self {
        RunLimits {
            max_windows: u64::MAX,
            max_steps,
        }
    }
}

impl Default for RunLimits {
    fn default() -> Self {
        RunLimits::standard()
    }
}

/// The result of driving one execution to a decision (or to its limit).
#[derive(Debug, Clone, PartialEq)]
pub struct RunOutcome {
    /// The final output bit of every processor (`None` = still `⊥`).
    pub decisions: Vec<Option<Bit>>,
    /// Which processors were crashed during the run.
    pub crashed: Vec<bool>,
    /// How many acceptable windows (window engine) or steps (async engine) elapsed.
    pub duration: u64,
    /// The window/step index at which the *first* processor decided, if any.
    pub first_decision_at: Option<u64>,
    /// The window/step index at which the *last* correct processor decided, if
    /// every correct processor decided within the limit.
    pub all_decided_at: Option<u64>,
    /// Correctness violations observed (conflicting decisions, invalid values).
    pub violations: Vec<String>,
    /// Total messages placed into the buffer.
    ///
    /// Mirror of [`Metrics::messages_sent`], kept for compatibility.
    pub messages_sent: u64,
    /// Total messages delivered.
    ///
    /// Mirror of [`Metrics::messages_delivered`], kept for compatibility.
    pub messages_delivered: u64,
    /// Total resetting steps performed.
    ///
    /// Mirror of [`Metrics::resets_consumed`], kept for compatibility.
    pub resets_performed: u64,
    /// Total crash steps performed.
    ///
    /// Mirror of [`Metrics::crashes`], kept for compatibility.
    pub crashes_performed: u64,
    /// The scheduler's running-time chain metric: the causal chain preceding
    /// the first decision for asynchronous runs, the window of the first
    /// decision for windowed runs (see [`Metrics::max_chain`] for the
    /// model-independent causal watermark).
    pub longest_chain: u64,
    /// `true` if the adversary halted the execution before the limit.
    pub halted_by_adversary: bool,
    /// Structured counters of everything the execution did (messages,
    /// windows/steps, resets, crashes, coin flips, causal chains).
    pub metrics: Metrics,
    /// The bounded event trace of the run.
    pub trace: Trace,
}

impl RunOutcome {
    /// `true` when every non-crashed processor wrote its output bit.
    pub fn all_correct_decided(&self) -> bool {
        self.decisions
            .iter()
            .zip(&self.crashed)
            .all(|(d, crashed)| *crashed || d.is_some())
    }

    /// `true` when at least one processor wrote its output bit.
    pub fn any_decided(&self) -> bool {
        self.decisions.iter().any(Option::is_some)
    }

    /// *Agreement*: no two processors decided different values (Definition 2's
    /// first requirement: conflicting non-`⊥` outputs are disallowed).
    pub fn agreement_holds(&self) -> bool {
        let mut seen: Option<Bit> = None;
        for decision in self.decisions.iter().flatten() {
            match seen {
                None => seen = Some(*decision),
                Some(v) if v != *decision => return false,
                Some(_) => {}
            }
        }
        true
    }

    /// *Validity*: every decided value equals some processor's input
    /// (Definition 2's second requirement). With binary inputs this reduces
    /// to: a unanimous input assignment forces that value.
    pub fn validity_holds(&self, inputs: &InputAssignment) -> bool {
        self.decisions
            .iter()
            .flatten()
            .all(|decided| inputs.iter().any(|input| input == *decided))
    }

    /// The common decided value, when agreement holds and someone decided.
    pub fn decided_value(&self) -> Option<Bit> {
        if !self.agreement_holds() {
            return None;
        }
        self.decisions.iter().flatten().next().copied()
    }

    /// `true` when the run satisfies agreement, validity and produced no
    /// recorded violations.
    pub fn is_correct(&self, inputs: &InputAssignment) -> bool {
        self.violations.is_empty() && self.agreement_holds() && self.validity_holds(inputs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(decisions: Vec<Option<Bit>>, crashed: Vec<bool>) -> RunOutcome {
        RunOutcome {
            decisions,
            crashed,
            duration: 10,
            first_decision_at: Some(3),
            all_decided_at: None,
            violations: Vec::new(),
            messages_sent: 0,
            messages_delivered: 0,
            resets_performed: 0,
            crashes_performed: 0,
            longest_chain: 0,
            halted_by_adversary: false,
            metrics: Metrics::default(),
            trace: Trace::new(),
        }
    }

    #[test]
    fn agreement_detects_conflicts() {
        let ok = outcome(vec![Some(Bit::One), None, Some(Bit::One)], vec![false; 3]);
        assert!(ok.agreement_holds());
        assert_eq!(ok.decided_value(), Some(Bit::One));

        let bad = outcome(vec![Some(Bit::One), Some(Bit::Zero)], vec![false; 2]);
        assert!(!bad.agreement_holds());
        assert_eq!(bad.decided_value(), None);
    }

    #[test]
    fn validity_requires_decided_value_among_inputs() {
        let inputs = InputAssignment::unanimous(3, Bit::Zero);
        let bad = outcome(vec![Some(Bit::One), None, None], vec![false; 3]);
        assert!(!bad.validity_holds(&inputs));
        let good = outcome(vec![Some(Bit::Zero), None, None], vec![false; 3]);
        assert!(good.validity_holds(&inputs));

        let mixed = InputAssignment::evenly_split(3);
        assert!(
            bad.validity_holds(&mixed),
            "any value is valid for mixed inputs"
        );
    }

    #[test]
    fn all_correct_decided_ignores_crashed() {
        let o = outcome(
            vec![Some(Bit::One), None, Some(Bit::One)],
            vec![false, true, false],
        );
        assert!(o.all_correct_decided());
        assert!(o.any_decided());
        let o = outcome(vec![Some(Bit::One), None, None], vec![false, true, false]);
        assert!(!o.all_correct_decided());
    }

    #[test]
    fn is_correct_combines_checks() {
        let inputs = InputAssignment::evenly_split(2);
        let mut o = outcome(vec![Some(Bit::One), Some(Bit::One)], vec![false; 2]);
        assert!(o.is_correct(&inputs));
        o.violations.push("conflicting decision".to_string());
        assert!(!o.is_correct(&inputs));
    }

    #[test]
    fn run_limits_presets() {
        assert!(RunLimits::small().max_windows < RunLimits::standard().max_windows);
        assert_eq!(RunLimits::windows(7).max_windows, 7);
        assert_eq!(RunLimits::steps(5).max_steps, 5);
        assert_eq!(RunLimits::default(), RunLimits::standard());
    }

    #[test]
    fn empty_outcome_trivially_agrees() {
        let o = outcome(vec![None, None], vec![false, false]);
        assert!(o.agreement_holds());
        assert!(!o.any_decided());
        assert_eq!(o.decided_value(), None);
    }
}

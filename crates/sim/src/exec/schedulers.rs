//! The two schedulers of the paper, expressed over [`ExecutionCore`].
//!
//! * [`WindowScheduler`] assembles one *acceptable window* (Definition 1) per
//!   unit of time: a sending phase for everyone, an adversary-chosen window
//!   validated against the definition, per-processor receiving phases, and at
//!   most `t` resetting steps.
//! * [`AsyncScheduler`] executes one adversary-chosen action per unit of time:
//!   a single message delivery, a crash, a Byzantine corruption, or a halt.
//!
//! Adding a new execution model (partial synchrony, message-omission
//! adversaries, …) means writing one more implementation of [`Scheduler`] in
//! this shape; the core supplies every primitive both of these are built from.

use agreement_model::{FullTrace, Recorder, TraceEvent};

use crate::adversary::{AsyncAction, AsyncAdversary, WindowAdversary};
use crate::metrics::{NoProbe, Probe};
use crate::outcome::RunLimits;

use super::ExecutionCore;

/// One adversary model's notion of a unit of scheduled time.
///
/// The [`ExecutionCore`] owns all execution state; a scheduler only decides
/// how to compose the core's primitive transitions (sending, receiving,
/// resetting, crashing, corrupting) into steps, which [`RunLimits`] cap
/// applies, and which chain metric the outcome reports. Schedulers are
/// parametric in the core's [`Probe`] *and* [`Recorder`] so the same
/// scheduler drives instrumented, un-instrumented, traced and trace-free
/// executions alike.
pub trait Scheduler<P: Probe = NoProbe, R: Recorder = FullTrace> {
    /// A short human-readable name, used in reports and panics.
    fn name(&self) -> &'static str;

    /// Called once before the first step. Implementations start the
    /// processors and, where the model calls for it, flush initial sends.
    /// Must be idempotent: driving an execution step by step and then through
    /// [`ExecutionCore::run`] may invoke it more than once.
    fn on_start(&mut self, core: &mut ExecutionCore<P, R>) {
        core.ensure_started();
    }

    /// Executes one unit of scheduled time. Returns `false` once the
    /// execution has halted; further calls must be no-ops.
    fn step(&mut self, core: &mut ExecutionCore<P, R>) -> bool;

    /// The cap from `limits` that applies to this scheduler's time unit.
    fn max_time(&self, limits: &RunLimits) -> u64;

    /// The longest-chain metric this model reports in its outcome.
    fn longest_chain(&self, core: &ExecutionCore<P, R>) -> u64;
}

/// The strongly adaptive model (Section 2): time advances one acceptable
/// window at a time, chosen by a [`WindowAdversary`].
#[derive(Debug)]
pub struct WindowScheduler<A: ?Sized> {
    adversary: A,
}

impl<'a> WindowScheduler<&'a mut dyn WindowAdversary> {
    /// Wraps a window adversary borrowed for the duration of a run.
    pub fn new(adversary: &'a mut dyn WindowAdversary) -> Self {
        WindowScheduler { adversary }
    }
}

impl<A: WindowAdversary + ?Sized> WindowScheduler<&mut A> {
    /// Executes one acceptable window chosen by the wrapped adversary.
    ///
    /// # Panics
    ///
    /// Panics if the adversary returns a window violating Definition 1 — that
    /// is a bug in the adversary implementation, not a legitimate execution.
    pub fn step_window<P: Probe, R: Recorder>(&mut self, core: &mut ExecutionCore<P, R>) {
        core.ensure_started();
        // Anything not delivered in the previous window is never delivered.
        core.discard_undelivered();

        // Sending phase.
        core.flush_all_outboxes();

        // Adversary chooses the window with full information.
        let window = core.with_view(|view| self.adversary.next_window(view));
        if let Err(err) = window.validate(&core.config()) {
            panic!(
                "adversary {:?} produced an invalid window at index {}: {err}",
                self.adversary.name(),
                core.time()
            );
        }
        core.push_trace(TraceEvent::WindowStarted { index: core.time() });

        // Receiving phase, then resetting phase.
        for recipient in agreement_model::ProcessorId::all(core.config().n()) {
            core.deliver_from_senders(recipient, window.delivery_set(recipient.index()));
        }
        for &id in window.resets() {
            core.reset(id);
        }

        core.advance_window();
        core.record_decision_progress();
    }
}

impl<A: WindowAdversary + ?Sized, P: Probe, R: Recorder> Scheduler<P, R>
    for WindowScheduler<&mut A>
{
    fn name(&self) -> &'static str {
        self.adversary.name()
    }

    fn step(&mut self, core: &mut ExecutionCore<P, R>) -> bool {
        self.step_window(core);
        true
    }

    fn max_time(&self, limits: &RunLimits) -> u64 {
        limits.max_windows
    }

    /// Windowed running time is measured in windows; the chain metric reports
    /// the window of the first decision (zero while undecided).
    fn longest_chain(&self, core: &ExecutionCore<P, R>) -> u64 {
        core.windowed_chain_metric()
    }
}

/// The fully asynchronous model (Section 5): time advances one adversary
/// action at a time, chosen by an [`AsyncAdversary`].
#[derive(Debug)]
pub struct AsyncScheduler<A: ?Sized> {
    adversary: A,
}

impl<'a> AsyncScheduler<&'a mut dyn AsyncAdversary> {
    /// Wraps an asynchronous adversary borrowed for the duration of a run.
    pub fn new(adversary: &'a mut dyn AsyncAdversary) -> Self {
        AsyncScheduler { adversary }
    }
}

impl<A: AsyncAdversary + ?Sized, P: Probe, R: Recorder> Scheduler<P, R> for AsyncScheduler<&mut A> {
    fn name(&self) -> &'static str {
        self.adversary.name()
    }

    /// Starting the asynchronous model immediately performs every processor's
    /// initial sending step: the adversary schedules deliveries from the very
    /// first action.
    fn on_start(&mut self, core: &mut ExecutionCore<P, R>) {
        core.ensure_started();
        core.flush_all_outboxes();
    }

    fn step(&mut self, core: &mut ExecutionCore<P, R>) -> bool {
        if core.is_halted() {
            return false;
        }
        let action = core.with_view(|view| self.adversary.next_action(view));
        core.advance_step();
        match action {
            AsyncAction::Deliver { from, to } => core.deliver_one(from, to),
            AsyncAction::Crash(id) => core.crash(id),
            AsyncAction::CorruptProcessor(id) => core.corrupt_processor(id),
            AsyncAction::Corrupt { from, to, payload } => core.corrupt_message(from, to, payload),
            AsyncAction::Halt => core.halt(),
        }
        core.record_decision_progress();
        !core.is_halted()
    }

    fn max_time(&self, limits: &RunLimits) -> u64 {
        limits.max_steps
    }

    /// Asynchronous running time is the longest message chain preceding the
    /// first decision (Section 5's metric), tracked causally by the core.
    fn longest_chain(&self, core: &ExecutionCore<P, R>) -> u64 {
        core.causal_chain_metric()
    }
}

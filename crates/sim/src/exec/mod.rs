//! The unified execution core and its pluggable schedulers.
//!
//! The paper analyzes the *same* protocols under two execution models — the
//! strongly adaptive acceptable-window model of Section 2 and the fully
//! asynchronous crash/Byzantine model of Section 5. Both models share almost
//! all of their mechanics: processor harnesses, an in-flight message buffer,
//! decision and validity tracking, trace emission and run-limit enforcement.
//! This module owns those mechanics once, in [`ExecutionCore`], and isolates
//! what genuinely differs — how a unit of scheduled time is assembled —
//! behind the [`Scheduler`] trait:
//!
//! * [`WindowScheduler`] assembles acceptable windows (sending phase,
//!   validated adversary window, receiving phases, resets) from a
//!   [`WindowAdversary`](crate::WindowAdversary).
//! * [`AsyncScheduler`] executes per-message adversarial deliveries, crashes
//!   and Byzantine corruptions from an
//!   [`AsyncAdversary`](crate::AsyncAdversary).
//! * [`PartialSyncScheduler`] implements eventual synchrony with omission
//!   faults from a [`PartialSyncAdversary`](crate::PartialSyncAdversary):
//!   free scheduling before the adversary's GST, *enforced* bounded-delay
//!   delivery after it.
//!
//! The public engines (`WindowEngine`, `AsyncEngine`, `PartialSyncEngine`)
//! are thin aliases of the generic [`Engine`](crate::Engine) facade over this
//! module; new execution models are added by implementing [`Scheduler`] and
//! declaring an [`ExecutionModel`](crate::ExecutionModel) — see DESIGN.md §2
//! for the partial-synchrony model as a worked example.

mod core;
mod partial_sync;
mod schedulers;

pub use self::core::ExecutionCore;
pub use self::partial_sync::PartialSyncScheduler;
pub use self::schedulers::{AsyncScheduler, Scheduler, WindowScheduler};

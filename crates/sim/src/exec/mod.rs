//! The unified execution core and its pluggable schedulers.
//!
//! The paper analyzes the *same* protocols under two execution models — the
//! strongly adaptive acceptable-window model of Section 2 and the fully
//! asynchronous crash/Byzantine model of Section 5. Both models share almost
//! all of their mechanics: processor harnesses, an in-flight message buffer,
//! decision and validity tracking, trace emission and run-limit enforcement.
//! This module owns those mechanics once, in [`ExecutionCore`], and isolates
//! what genuinely differs — how a unit of scheduled time is assembled —
//! behind the [`Scheduler`] trait:
//!
//! * [`WindowScheduler`] assembles acceptable windows (sending phase,
//!   validated adversary window, receiving phases, resets) from a
//!   [`WindowAdversary`](crate::WindowAdversary).
//! * [`AsyncScheduler`] executes per-message adversarial deliveries, crashes
//!   and Byzantine corruptions from an
//!   [`AsyncAdversary`](crate::AsyncAdversary).
//!
//! The public engines [`WindowEngine`](crate::WindowEngine) and
//! [`AsyncEngine`](crate::AsyncEngine) are thin drivers over this module; new
//! execution models (partial synchrony, message-omission adversaries, …) are
//! added by implementing [`Scheduler`] — see DESIGN.md for a walkthrough.

mod core;
mod schedulers;

pub use self::core::ExecutionCore;
pub use self::schedulers::{AsyncScheduler, Scheduler, WindowScheduler};

//! The shared execution substrate both engines (and any future execution
//! model) drive.
//!
//! [`ExecutionCore`] is the single owner of everything an execution of the
//! paper's model consists of, independent of *which* adversary model schedules
//! it: the per-processor harnesses, the in-flight [`MessageBuffer`], causal
//! chain depths, decision/validity tracking, trace emission and the outcome
//! snapshot. What differs between models — how a unit of scheduled time is
//! assembled — lives behind the [`Scheduler`](super::Scheduler) trait.
//! Observation is compile-time gated twice over: primitive-transition hooks
//! live behind the [`Probe`](crate::Probe) trait (default
//! [`NoProbe`](crate::NoProbe) compiles every hook away), and trace emission
//! lives behind the [`Recorder`](agreement_model::Recorder) trait — the
//! default [`FullTrace`] keeps the event log for diagnostics, while
//! [`NoTrace`](agreement_model::NoTrace) monomorphizes every trace push (and
//! the construction of its event) out of the campaign hot path entirely.

use agreement_model::{
    Bit, FullTrace, InputAssignment, Payload, ProcessorId, ProtocolBuilder, Recorder, StateDigest,
    SystemConfig, TraceEvent,
};

use crate::adversary::SystemView;
use crate::buffer::{BufferChoice, MessageBuffer, PoppedPayload};
use crate::harness::{Outgoing, ProcessorHarness};
use crate::metrics::{Metrics, NoProbe, Probe};
use crate::outcome::{RunLimits, RunOutcome};

use super::Scheduler;

/// The shared state of one execution: harnesses, buffer, recorder and
/// counters.
///
/// A core is model-agnostic. It exposes the primitive state transitions of the
/// paper's model (sending steps, receiving steps, resetting steps, crashes,
/// Byzantine corruption) and records their effects; a
/// [`Scheduler`](super::Scheduler) composes them into the execution shape of a
/// concrete adversary model. Every transition additionally fires a hook on
/// the core's [`Probe`] and an event on its [`Recorder`]; with the default
/// [`NoProbe`] the hooks are empty inlined bodies, and with
/// [`NoTrace`](agreement_model::NoTrace) the event pushes vanish the same
/// way — a `NoProbe`/`NoTrace` core is byte-for-byte the un-instrumented,
/// un-traced core the campaign workers run.
#[derive(Debug)]
pub struct ExecutionCore<P: Probe = NoProbe, R: Recorder = FullTrace> {
    cfg: SystemConfig,
    inputs: InputAssignment,
    harnesses: Vec<ProcessorHarness>,
    buffer: MessageBuffer,
    recorder: R,
    probe: P,
    /// Scheduler time: window index for windowed executions, step index for
    /// asynchronous ones. Advanced only by [`ExecutionCore::advance_window`]
    /// and [`ExecutionCore::advance_step`].
    time: u64,
    /// Acceptable windows scheduled so far (windowed executions only).
    windows: u64,
    /// Adversary steps scheduled so far (asynchronous executions only).
    steps: u64,
    /// Causal depth of each processor: the longest chain among messages it has
    /// received so far.
    depth: Vec<u64>,
    resets_performed: u64,
    crashes_performed: u64,
    corrupted: Vec<bool>,
    /// Reusable snapshot buffers for [`ExecutionCore::with_view`], refilled
    /// before every adversary decision instead of freshly allocated.
    view_digests: Vec<StateDigest>,
    view_outputs: Vec<Option<Bit>>,
    view_crashed: Vec<bool>,
    /// `true` while the view snapshot buffers mirror the harnesses exactly,
    /// up to the indices queued in `view_dirty`. Cleared whenever a wholesale
    /// rebuild is cheaper or required (first view, `ensure_started`, or more
    /// dirty marks than processors).
    view_ready: bool,
    /// Processors whose digest/output/crash entries must be re-read before
    /// the next view is handed out. May contain duplicates.
    view_dirty: Vec<usize>,
    /// Number of non-crashed processors that have not decided yet. Kept
    /// incrementally so termination checks are O(1) per adversary step
    /// instead of an O(n) scan.
    undecided_correct: usize,
    /// Number of processors (crashed or not) whose output register is set.
    decided_count: usize,
    first_decision_at: Option<u64>,
    all_decided_at: Option<u64>,
    chain_at_first_decision: Option<u64>,
    halted: bool,
    started: bool,
}

impl ExecutionCore<NoProbe, FullTrace> {
    /// Creates an un-instrumented, trace-keeping core for `cfg.n()`
    /// processors with the given inputs.
    ///
    /// # Panics
    ///
    /// Panics if `inputs` does not assign exactly `cfg.n()` bits.
    pub fn new(
        cfg: SystemConfig,
        inputs: InputAssignment,
        builder: &dyn ProtocolBuilder,
        master_seed: u64,
    ) -> Self {
        ExecutionCore::with_probe(cfg, inputs, builder, master_seed, NoProbe)
    }
}

impl<P: Probe> ExecutionCore<P, FullTrace> {
    /// Creates a trace-keeping core whose primitive transitions are observed
    /// by `probe`.
    ///
    /// # Panics
    ///
    /// Panics if `inputs` does not assign exactly `cfg.n()` bits.
    pub fn with_probe(
        cfg: SystemConfig,
        inputs: InputAssignment,
        builder: &dyn ProtocolBuilder,
        master_seed: u64,
        probe: P,
    ) -> Self {
        ExecutionCore::with_parts(cfg, inputs, builder, master_seed, probe, FullTrace::new())
    }
}

impl<P: Probe, R: Recorder> ExecutionCore<P, R> {
    /// Creates a core with an explicit probe *and* recorder. Campaign workers
    /// pass [`NoTrace`](agreement_model::NoTrace) here so every per-message
    /// trace push monomorphizes away; diagnostic paths pass [`FullTrace`].
    ///
    /// # Panics
    ///
    /// Panics if `inputs` does not assign exactly `cfg.n()` bits.
    pub fn with_parts(
        cfg: SystemConfig,
        inputs: InputAssignment,
        builder: &dyn ProtocolBuilder,
        master_seed: u64,
        probe: P,
        recorder: R,
    ) -> Self {
        assert_eq!(
            inputs.len(),
            cfg.n(),
            "input assignment must cover every processor"
        );
        let harnesses = ProcessorId::all(cfg.n())
            .map(|id| ProcessorHarness::new(id, inputs.bit(id.index()), cfg, builder, master_seed))
            .collect();
        ExecutionCore {
            depth: vec![0; cfg.n()],
            corrupted: vec![false; cfg.n()],
            view_digests: Vec::with_capacity(cfg.n()),
            view_outputs: Vec::with_capacity(cfg.n()),
            view_crashed: Vec::with_capacity(cfg.n()),
            view_ready: false,
            view_dirty: Vec::new(),
            undecided_correct: cfg.n(),
            decided_count: 0,
            cfg,
            inputs,
            harnesses,
            buffer: MessageBuffer::with_processors(cfg.n()),
            recorder,
            probe,
            time: 0,
            windows: 0,
            steps: 0,
            resets_performed: 0,
            crashes_performed: 0,
            first_decision_at: None,
            all_decided_at: None,
            chain_at_first_decision: None,
            halted: false,
            started: false,
        }
    }

    /// Re-initializes this core for a fresh trial **in place**, reusing every
    /// allocation the previous trial warmed up: the harness vector (and each
    /// harness's outbox/violation buffers), the flat channel array and
    /// payload arena of the buffer, the causal-depth and view scratch
    /// vectors. Equivalent to building a new core with
    /// [`ExecutionCore::with_parts`] and the current probe/recorder — the
    /// workspace-reuse equivalence tests pin that down bit for bit.
    ///
    /// The probe is carried over untouched (so a campaign-wide probe keeps
    /// accumulating); the recorder is [`reset`](Recorder::reset). `inputs` is
    /// copied into the core's existing assignment buffer, not reallocated.
    ///
    /// # Panics
    ///
    /// Panics if `inputs` does not assign exactly `cfg.n()` bits.
    pub fn reinit(
        &mut self,
        cfg: SystemConfig,
        inputs: &InputAssignment,
        builder: &dyn ProtocolBuilder,
        master_seed: u64,
    ) {
        assert_eq!(
            inputs.len(),
            cfg.n(),
            "input assignment must cover every processor"
        );
        let n = cfg.n();
        if self.harnesses.len() == n {
            for (i, harness) in self.harnesses.iter_mut().enumerate() {
                harness.reinit(
                    ProcessorId::new(i),
                    inputs.bit(i),
                    cfg,
                    builder,
                    master_seed,
                );
            }
        } else {
            self.harnesses.clear();
            self.harnesses.extend(ProcessorId::all(n).map(|id| {
                ProcessorHarness::new(id, inputs.bit(id.index()), cfg, builder, master_seed)
            }));
        }
        self.buffer.reset(n);
        self.recorder.reset();
        self.depth.clear();
        self.depth.resize(n, 0);
        self.corrupted.clear();
        self.corrupted.resize(n, false);
        self.view_ready = false;
        self.view_dirty.clear();
        self.undecided_correct = n;
        self.decided_count = 0;
        self.cfg = cfg;
        self.inputs.clone_from(inputs);
        self.time = 0;
        self.windows = 0;
        self.steps = 0;
        self.resets_performed = 0;
        self.crashes_performed = 0;
        self.first_decision_at = None;
        self.all_decided_at = None;
        self.chain_at_first_decision = None;
        self.halted = false;
        self.started = false;
    }

    /// Selects the channel layout policy of the message buffer.
    ///
    /// Must be called while the buffer is empty (between trials); campaign
    /// workers apply a plan's choice right after [`ExecutionCore::reinit`].
    /// With [`BufferChoice::Auto`] the buffer itself picks dense channels for
    /// small systems and the sparse fabric for large ones.
    pub fn set_buffer_choice(&mut self, choice: BufferChoice) {
        self.buffer.set_choice(choice);
    }

    // ----- static state & snapshots ------------------------------------------------

    /// The system configuration.
    pub fn config(&self) -> SystemConfig {
        self.cfg
    }

    /// The input assignment of this execution.
    pub fn inputs(&self) -> &InputAssignment {
        &self.inputs
    }

    /// Scheduler time elapsed so far (windows or steps, depending on model).
    pub fn time(&self) -> u64 {
        self.time
    }

    /// Read access to the probe observing this execution.
    pub fn probe(&self) -> &P {
        &self.probe
    }

    /// Read access to the in-flight message buffer.
    pub fn buffer(&self) -> &MessageBuffer {
        &self.buffer
    }

    /// The current output bits of all processors, in identity order. Lazy:
    /// collect only when a snapshot must outlive the core borrow.
    pub fn decisions(&self) -> impl Iterator<Item = Option<Bit>> + '_ {
        self.harnesses.iter().map(ProcessorHarness::decision)
    }

    /// The adversary-visible digests of all processors, in identity order.
    pub fn digests(&self) -> impl Iterator<Item = StateDigest> + '_ {
        self.harnesses.iter().map(ProcessorHarness::digest)
    }

    /// Which processors have been crashed so far, in identity order.
    pub fn crashed(&self) -> impl Iterator<Item = bool> + '_ {
        self.harnesses.iter().map(ProcessorHarness::is_crashed)
    }

    /// Whether processor `id` has crashed.
    pub fn is_crashed(&self, id: ProcessorId) -> bool {
        self.harnesses[id.index()].is_crashed()
    }

    /// Which processors have been declared Byzantine-corrupted so far.
    pub fn corrupted(&self) -> &[bool] {
        &self.corrupted
    }

    /// `true` once every processor (crashed or not) has written its output bit.
    pub fn all_decided(&self) -> bool {
        self.harnesses.iter().all(|h| h.decision().is_some())
    }

    /// `true` once every non-crashed processor has written its output bit.
    ///
    /// O(1): the core tracks the undecided-correct count across decisions and
    /// crashes, so the campaign run loop (which checks this once per unit of
    /// scheduled time) never rescans all `n` harnesses.
    pub fn all_correct_decided(&self) -> bool {
        debug_assert_eq!(
            self.undecided_correct == 0,
            self.harnesses
                .iter()
                .all(|h| h.is_crashed() || h.decision().is_some()),
            "undecided-correct counter out of sync with harness state"
        );
        self.undecided_correct == 0
    }

    /// Number of faults (crashes plus corruptions) charged so far.
    pub fn faults_used(&self) -> usize {
        self.crashes_performed as usize + self.corrupted.iter().filter(|&&c| c).count()
    }

    /// The time at which the first processor decided, if any.
    pub fn first_decision_at(&self) -> Option<u64> {
        self.first_decision_at
    }

    /// The causal depth of the first deciding processor at its decision, if any.
    pub fn chain_at_first_decision(&self) -> Option<u64> {
        self.chain_at_first_decision
    }

    /// The chain metric of windowed time models: the window of the first
    /// decision (zero while undecided). Shared by `WindowScheduler` and the
    /// step-wise `WindowEngine::outcome` so the two paths cannot diverge.
    pub fn windowed_chain_metric(&self) -> u64 {
        self.first_decision_at.unwrap_or(0)
    }

    /// The chain metric of asynchronous time models: the causal depth at the
    /// first decision (Section 5's measure). Shared by `AsyncScheduler` and
    /// the step-wise `AsyncEngine::outcome`.
    pub fn causal_chain_metric(&self) -> u64 {
        self.chain_at_first_decision.unwrap_or(0)
    }

    /// `true` once a scheduler or adversary has halted the execution.
    pub fn is_halted(&self) -> bool {
        self.halted
    }

    /// Gives a scheduler the full-information [`SystemView`] of the current
    /// state (digests, outputs, crash flags and the whole buffer).
    ///
    /// Takes `&mut self` only to refresh the core's reusable snapshot
    /// buffers; the adversary sees an immutable view. This runs once per
    /// adversary decision, so it must not allocate — and at large `n` it must
    /// not even rescan: the snapshot is kept incrementally, re-reading only
    /// the processors whose state changed since the previous view (an
    /// asynchronous step touches one recipient, so the refresh is O(1)). A
    /// full rebuild happens only when the view was never built, after
    /// `ensure_started` (which touches everyone), or when more marks than
    /// processors accumulated (a window's delivery phase).
    pub fn with_view<T>(&mut self, f: impl FnOnce(&SystemView<'_>) -> T) -> T {
        if self.view_ready {
            for &i in &self.view_dirty {
                let harness = &self.harnesses[i];
                self.view_digests[i] = harness.digest();
                self.view_outputs[i] = harness.decision();
                self.view_crashed[i] = harness.is_crashed();
            }
            self.view_dirty.clear();
        } else {
            self.view_digests.clear();
            self.view_outputs.clear();
            self.view_crashed.clear();
            for harness in &self.harnesses {
                self.view_digests.push(harness.digest());
                self.view_outputs.push(harness.decision());
                self.view_crashed.push(harness.is_crashed());
            }
            self.view_dirty.clear();
            self.view_ready = true;
        }
        let view = SystemView {
            config: self.cfg,
            time: self.time,
            digests: &self.view_digests,
            outputs: &self.view_outputs,
            crashed: &self.view_crashed,
            buffer: &self.buffer,
        };
        f(&view)
    }

    /// Queues processor `i` for a snapshot refresh before the next view.
    ///
    /// Once more marks than processors accumulate, a wholesale rebuild is
    /// cheaper than replaying them, so the ready flag is dropped instead
    /// (this is what every delivery phase of a window converges to).
    #[inline]
    fn mark_view_dirty(&mut self, i: usize) {
        if !self.view_ready {
            return;
        }
        if self.view_dirty.len() >= self.harnesses.len() {
            self.view_ready = false;
            self.view_dirty.clear();
        } else {
            self.view_dirty.push(i);
        }
    }

    /// Recomputes both decision counters from scratch (used after transitions
    /// that may touch every processor at once).
    fn recount_decisions(&mut self) {
        self.decided_count = self
            .harnesses
            .iter()
            .filter(|h| h.decision().is_some())
            .count();
        self.undecided_correct = self
            .harnesses
            .iter()
            .filter(|h| !h.is_crashed() && h.decision().is_none())
            .count();
    }

    // ----- primitive transitions ---------------------------------------------------

    /// Runs every processor's `on_start` callback. Idempotent.
    pub fn ensure_started(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        for harness in &mut self.harnesses {
            harness.start();
        }
        // `on_start` may decide, and it is the one transition that touches
        // every processor — rebuild the view snapshot and the decision
        // counters wholesale rather than marking all n dirty.
        self.view_ready = false;
        self.view_dirty.clear();
        self.recount_decisions();
    }

    /// A *sending step* of processor `id`: moves its computed messages into
    /// the buffer, tagging each with the processor's causal depth plus one.
    ///
    /// A staged broadcast is interned **once** and enqueued by handle per
    /// recipient — the payload is never cloned, no matter the fan-out.
    /// Unicast messages skip the arena entirely: their payloads move inline
    /// into the queue entry, with no refcount bookkeeping.
    pub fn flush_outbox(&mut self, id: ProcessorId) {
        let chain = self.depth[id.index()] + 1;
        let n = self.cfg.n();
        let ExecutionCore {
            harnesses,
            buffer,
            recorder,
            probe,
            ..
        } = self;
        for outgoing in harnesses[id.index()].drain_outbox() {
            match outgoing {
                Outgoing::One { to, payload } => {
                    recorder.record(TraceEvent::Sent { from: id, to });
                    probe.on_send(id, chain);
                    buffer.enqueue_unicast(id, to, payload, chain);
                }
                Outgoing::Broadcast { payload } => {
                    let handle = buffer.intern(payload);
                    for to in ProcessorId::all(n) {
                        recorder.record(TraceEvent::Sent { from: id, to });
                        probe.on_send(id, chain);
                        buffer.enqueue_ref(id, to, handle, chain);
                    }
                }
                Outgoing::Multicast { to, payload } => match to.as_slice() {
                    // An empty recipient set sends nothing; a singleton takes
                    // the inline unicast path and skips the arena. Otherwise
                    // the payload is interned once and enqueued by handle per
                    // listed recipient — O(|set|) regardless of n.
                    [] => {}
                    [only] => {
                        recorder.record(TraceEvent::Sent {
                            from: id,
                            to: *only,
                        });
                        probe.on_send(id, chain);
                        buffer.enqueue_unicast(id, *only, payload, chain);
                    }
                    recipients => {
                        let handle = buffer.intern(payload);
                        for &to in recipients {
                            recorder.record(TraceEvent::Sent { from: id, to });
                            probe.on_send(id, chain);
                            buffer.enqueue_ref(id, to, handle, chain);
                        }
                    }
                },
            }
        }
    }

    /// Sending steps for every non-crashed processor (the sending phase of an
    /// acceptable window).
    pub fn flush_all_outboxes(&mut self) {
        for id in ProcessorId::all(self.cfg.n()) {
            if !self.harnesses[id.index()].is_crashed() {
                self.flush_outbox(id);
            }
        }
    }

    /// Discards every undelivered message (start of a new acceptable window).
    pub fn discard_undelivered(&mut self) -> usize {
        let dropped = self.buffer.discard_undelivered();
        if dropped > 0 {
            self.probe.on_drop(dropped as u64);
        }
        dropped
    }

    /// A single adversarial *receiving step*: delivers the oldest undelivered
    /// message on the channel `from -> to`, lets the recipient process it, and
    /// flushes the recipient's resulting sends into the buffer. No-op when the
    /// recipient has crashed or the channel is empty.
    pub fn deliver_one(&mut self, from: ProcessorId, to: ProcessorId) {
        if self.harnesses[to.index()].is_crashed() {
            return;
        }
        let Some((popped, chain)) = self.buffer.pop_message(from, to) else {
            return;
        };
        self.recorder.record(TraceEvent::Delivered { from, to });
        self.probe.on_deliver(from, to, chain);
        let before = self.harnesses[to.index()].decision();
        // Shared (broadcast) payloads are processed straight out of the arena
        // — borrowed, not moved — and their reference retired afterwards;
        // inline unicast payloads arrive by value from the queue entry.
        match popped {
            PoppedPayload::Inline(payload) => {
                self.harnesses[to.index()].deliver(from, &payload);
            }
            PoppedPayload::Shared(handle) => {
                self.harnesses[to.index()].deliver(from, self.buffer.payload(handle));
                self.buffer.release(handle);
            }
        }
        let depth = &mut self.depth[to.index()];
        *depth = (*depth).max(chain);
        let after = self.harnesses[to.index()].decision();
        if before.is_none() {
            if let Some(value) = after {
                self.recorder.record(TraceEvent::Decided {
                    id: to,
                    value,
                    at: self.time,
                });
                self.decided_count += 1;
                self.undecided_correct -= 1;
                if self.chain_at_first_decision.is_none() {
                    self.chain_at_first_decision = Some(self.depth[to.index()]);
                }
            }
        }
        self.mark_view_dirty(to.index());
        self.flush_outbox(to);
    }

    /// The receiving steps of one processor in an acceptable window: drains,
    /// and immediately processes, everything the senders in `S_i` just sent to
    /// `recipient`. Responses stay in the recipient's outbox until the next
    /// window's sending phase.
    pub fn deliver_from_senders(&mut self, recipient: ProcessorId, senders: &[ProcessorId]) {
        let before = self.harnesses[recipient.index()].decision();
        let mut depth = self.depth[recipient.index()];
        for &sender in senders {
            // Pop one message at a time rather than draining into a Vec: this
            // runs for every (recipient, sender) pair of every window, so the
            // receiving phase must not allocate. Broadcast payloads are
            // processed borrowed from the arena, unicasts by value from the
            // entry — never cloned either way.
            while let Some((popped, chain)) = self.buffer.pop_message(sender, recipient) {
                self.recorder.record(TraceEvent::Delivered {
                    from: sender,
                    to: recipient,
                });
                self.probe.on_deliver(sender, recipient, chain);
                depth = depth.max(chain);
                match popped {
                    PoppedPayload::Inline(payload) => {
                        self.harnesses[recipient.index()].deliver(sender, &payload);
                    }
                    PoppedPayload::Shared(handle) => {
                        self.harnesses[recipient.index()]
                            .deliver(sender, self.buffer.payload(handle));
                        self.buffer.release(handle);
                    }
                }
            }
        }
        self.depth[recipient.index()] = depth;
        let after = self.harnesses[recipient.index()].decision();
        if before.is_none() {
            if let Some(value) = after {
                self.recorder.record(TraceEvent::Decided {
                    id: recipient,
                    value,
                    at: self.time,
                });
                self.decided_count += 1;
                self.undecided_correct -= 1;
            }
        }
        self.mark_view_dirty(recipient.index());
    }

    /// A *resetting step*: erases the processor's memory and counts the reset.
    pub fn reset(&mut self, id: ProcessorId) {
        // `on_reset` runs with a full context, so a protocol's rejoin logic
        // could in principle decide — keep the counters exact.
        let before = self.harnesses[id.index()].decision();
        self.harnesses[id.index()].reset();
        if before.is_none() && self.harnesses[id.index()].decision().is_some() {
            self.decided_count += 1;
            self.undecided_correct -= 1;
        }
        self.mark_view_dirty(id.index());
        self.resets_performed += 1;
        self.probe.on_reset(id);
        self.recorder.record(TraceEvent::Reset { id });
    }

    /// Crashes a processor, enforcing the fault budget `t`: an attempt beyond
    /// the budget is ignored and recorded as a violation trace event.
    pub fn crash(&mut self, id: ProcessorId) {
        if self.harnesses[id.index()].is_crashed() {
            return;
        }
        if self.faults_used() >= self.cfg.t() {
            let t = self.cfg.t();
            self.recorder.record_with(|| TraceEvent::Violation {
                description: format!(
                    "adversary attempted to crash {id} beyond the fault budget t={t}; ignored"
                ),
            });
            return;
        }
        self.harnesses[id.index()].crash();
        if self.harnesses[id.index()].decision().is_none() {
            // A crashed processor no longer counts toward termination.
            self.undecided_correct -= 1;
        }
        self.mark_view_dirty(id.index());
        let dropped_before = self.buffer.dropped_count();
        self.buffer.drop_to(id);
        let dropped = self.buffer.dropped_count() - dropped_before;
        if dropped > 0 {
            self.probe.on_drop(dropped);
        }
        self.crashes_performed += 1;
        self.probe.on_crash(id);
        self.recorder.record(TraceEvent::Crashed { id });
    }

    /// Declares a processor Byzantine-corrupted (charged against the budget
    /// `t`); over-budget attempts are ignored and logged.
    pub fn corrupt_processor(&mut self, id: ProcessorId) {
        if self.corrupted[id.index()] {
            return;
        }
        if self.faults_used() >= self.cfg.t() {
            let t = self.cfg.t();
            self.recorder.record_with(|| TraceEvent::Violation {
                description: format!(
                    "adversary attempted to corrupt {id} beyond the fault budget t={t}; ignored"
                ),
            });
            return;
        }
        self.corrupted[id.index()] = true;
    }

    /// Rewrites the oldest in-flight message on `from -> to`, which is only
    /// legal when `from` was previously declared corrupted; an illegal attempt
    /// is ignored and logged.
    pub fn corrupt_message(&mut self, from: ProcessorId, to: ProcessorId, payload: Payload) {
        if self.corrupted[from.index()] {
            if self.buffer.corrupt_head(from, to, payload).is_some() {
                self.recorder.record(TraceEvent::Corrupted { id: from });
            }
        } else {
            self.recorder.record_with(|| TraceEvent::Violation {
                description: format!(
                    "adversary attempted to corrupt a message of uncorrupted {from}; ignored"
                ),
            });
        }
    }

    /// Records a scheduler-specific trace event (e.g. window boundaries).
    pub fn push_trace(&mut self, event: TraceEvent) {
        self.recorder.record(event);
    }

    /// Advances the scheduler clock by one acceptable window.
    pub fn advance_window(&mut self) {
        self.time += 1;
        self.windows += 1;
        self.buffer.set_now(self.time);
        self.probe.on_window();
    }

    /// Advances the scheduler clock by one adversary step (asynchronous and
    /// partial-synchrony models).
    pub fn advance_step(&mut self) {
        self.time += 1;
        self.steps += 1;
        self.buffer.set_now(self.time);
        self.probe.on_step();
    }

    /// Marks the execution as halted by the adversary.
    pub fn halt(&mut self) {
        self.halted = true;
    }

    /// Latches `first_decision_at` / `all_decided_at` against the current
    /// clock. Schedulers call this once per unit of time, after its effects —
    /// O(1) via the incrementally maintained decision counters.
    pub fn record_decision_progress(&mut self) {
        debug_assert_eq!(
            self.decided_count > 0,
            self.harnesses.iter().any(|h| h.decision().is_some()),
            "decided counter out of sync with harness state"
        );
        if self.first_decision_at.is_none() && self.decided_count > 0 {
            self.first_decision_at = Some(self.time);
        }
        if self.all_decided_at.is_none() && self.all_correct_decided() {
            self.all_decided_at = Some(self.time);
        }
    }

    // ----- driving & outcomes ------------------------------------------------------

    /// Runs `scheduler` until every correct processor has decided, the
    /// execution halts, or the scheduler's time cap from `limits` elapses.
    pub fn run(&mut self, scheduler: &mut dyn Scheduler<P, R>, limits: RunLimits) -> RunOutcome {
        scheduler.on_start(self);
        self.record_decision_progress();
        let cap = scheduler.max_time(&limits);
        while !self.all_correct_decided() && !self.halted && self.time < cap {
            if !scheduler.step(self) {
                break;
            }
        }
        self.outcome_with(scheduler)
    }

    /// Produces the outcome snapshot, reporting the chain metric `scheduler`
    /// defines for its time model.
    pub fn outcome_with(&mut self, scheduler: &dyn Scheduler<P, R>) -> RunOutcome {
        let longest_chain = scheduler.longest_chain(self);
        self.outcome(longest_chain)
    }

    /// The structured metrics snapshot of the execution so far, assembled
    /// from counters the core maintains anyway — no probe required.
    pub fn metrics(&self) -> Metrics {
        Metrics {
            messages_sent: self.buffer.enqueued_count(),
            messages_delivered: self.buffer.delivered_count(),
            messages_dropped: self.buffer.dropped_count(),
            rounds: self
                .harnesses
                .iter()
                .filter_map(|h| h.digest().round)
                .max()
                .unwrap_or(0),
            windows: self.windows,
            steps: self.steps,
            resets_consumed: self.resets_performed,
            crashes: self.crashes_performed,
            coin_flips: self.harnesses.iter().map(|h| h.coin_flips()).sum(),
            max_chain: self.depth.iter().copied().max().unwrap_or(0),
        }
    }

    /// Produces the outcome snapshot of the execution so far with an explicit
    /// longest-chain metric.
    ///
    /// The accumulated trace is **moved** into the outcome, not cloned (the
    /// clone used to be per-trial heap work the campaign immediately threw
    /// away): a second snapshot of the same execution reports an empty trace,
    /// while every counter and decision field stays exact.
    pub fn outcome(&mut self, longest_chain: u64) -> RunOutcome {
        let violations: Vec<String> = self
            .harnesses
            .iter()
            .flat_map(|h| h.violations().iter().cloned())
            .chain(self.validity_violations())
            .collect();
        let metrics = self.metrics();
        RunOutcome {
            decisions: self.decisions().collect(),
            crashed: self.crashed().collect(),
            duration: self.time,
            first_decision_at: self.first_decision_at,
            all_decided_at: self.all_decided_at,
            violations,
            messages_sent: metrics.messages_sent,
            messages_delivered: metrics.messages_delivered,
            resets_performed: metrics.resets_consumed,
            crashes_performed: metrics.crashes,
            longest_chain,
            halted_by_adversary: self.halted,
            metrics,
            trace: self.recorder.take_trace(),
        }
    }

    fn validity_violations(&self) -> Vec<String> {
        let mut violations = Vec::new();
        if let Some(unanimous) = self.inputs.unanimous_value() {
            for harness in &self.harnesses {
                if let Some(decided) = harness.decision() {
                    if decided != unanimous {
                        violations.push(format!(
                            "{} decided {decided} although every input is {unanimous}",
                            harness.id()
                        ));
                    }
                }
            }
        }
        let mut decided_values = self.harnesses.iter().filter_map(ProcessorHarness::decision);
        if let Some(first) = decided_values.next() {
            if decided_values.any(|other| other != first) {
                violations.push("processors decided conflicting values".to_string());
            }
        }
        violations
    }
}

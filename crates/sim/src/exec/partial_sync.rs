//! The partial-synchrony scheduler: eventual synchrony with omission faults,
//! expressed over [`ExecutionCore`].
//!
//! This is the "curtailed adversary" side of the paper's dichotomy. Before an
//! adversary-chosen global stabilization time (GST) the adversary schedules
//! with full asynchronous freedom — deliver anything, crash up to `t`
//! processors, or simply stall. From GST on, the model takes over: every
//! pending message must be delivered within a bounded-delay window Δ, and the
//! scheduler **enforces** that bound by force-delivering overdue messages at
//! the start of each step, whatever the adversary chooses to do. The only
//! post-GST escape hatch is omission: senders may be declared
//! omission-faulty, and their messages are exempt from forced delivery (they
//! may never arrive at all — the send-omission analogue of a crash).
//! Omissions and crashes draw from **one** shared fault budget of `t`
//! processors: the declared omission set charges its size up front, and a
//! crash that would push the combined total past `t` is refused — so at most
//! `t` voices can ever be silenced, and `n - t` quorums stay reachable.
//!
//! Concretely, one unit of scheduled time is one step:
//!
//! 1. the adversary picks a discretionary [`PartialSyncAction`] with full
//!    information;
//! 2. the clock advances;
//! 3. **bounded-delay enforcement** — if the clock has passed GST, every
//!    pending message sent at step `s` whose deadline `max(s, gst) + Δ` has
//!    arrived is delivered, in deterministic sender-major channel order
//!    (messages from omitted senders and messages to crashed recipients are
//!    exempt);
//! 4. the discretionary action is applied.
//!
//! Running time is measured in steps against `RunLimits::max_steps`, and the
//! chain metric is the causal depth at the first decision, exactly as in the
//! fully asynchronous model — so expected-time numbers are directly
//! comparable between the two.

use agreement_model::{ProcessorId, Recorder};

use crate::adversary::{PartialSyncAction, PartialSyncAdversary};
use crate::metrics::Probe;
use crate::outcome::RunLimits;

use super::{ExecutionCore, Scheduler};

/// The partial-synchrony model's scheduler: free scheduling before the
/// adversary's GST, enforced bounded-delay delivery after it.
#[derive(Debug)]
pub struct PartialSyncScheduler<A: ?Sized> {
    adversary: A,
}

impl<'a> PartialSyncScheduler<&'a mut dyn PartialSyncAdversary> {
    /// Wraps a partial-synchrony adversary borrowed for the duration of a run.
    pub fn new(adversary: &'a mut dyn PartialSyncAdversary) -> Self {
        PartialSyncScheduler { adversary }
    }
}

impl<A: PartialSyncAdversary + ?Sized> PartialSyncScheduler<&mut A> {
    /// The effective omission set: the first `t` senders the adversary
    /// declared, the budget the model grants it.
    fn is_omitted(&self, sender: ProcessorId, t: usize) -> bool {
        self.adversary
            .omitted_senders()
            .iter()
            .take(t)
            .any(|&s| s == sender)
    }

    /// How many faults the declared omission set charges against the shared
    /// budget `t`: the distinct senders among the first `t` entries.
    fn omission_faults(&self, t: usize) -> usize {
        let honoured =
            &self.adversary.omitted_senders()[..self.adversary.omitted_senders().len().min(t)];
        honoured
            .iter()
            .enumerate()
            .filter(|(i, s)| !honoured[..*i].contains(s))
            .count()
    }

    /// Delivers every pending message whose post-GST deadline has arrived:
    /// a message sent at step `s` must be delivered by `max(s, gst) + Δ`.
    ///
    /// Channels are scanned sender-major; within a channel, FIFO order and a
    /// monotone clock mean the head is always the oldest message, so popping
    /// while the head is overdue delivers exactly the overdue prefix.
    /// Messages from omitted senders and to crashed recipients are exempt
    /// (the model only promises delivery between correct processors).
    fn force_overdue<P: Probe, R: Recorder>(
        &mut self,
        core: &mut ExecutionCore<P, R>,
        now: u64,
        gst: u64,
        delta: u64,
    ) {
        let n = core.config().n();
        let t = core.config().t();
        for from in ProcessorId::all(n) {
            if self.is_omitted(from, t) {
                continue;
            }
            for to in ProcessorId::all(n) {
                if core.is_crashed(to) {
                    continue;
                }
                while let Some(sent) = core.buffer().head_sent_at(from, to) {
                    if sent.max(gst) + delta > now {
                        break;
                    }
                    core.deliver_one(from, to);
                }
            }
        }
    }

    /// Executes one partial-synchrony step (see the module docs for the
    /// phase order). Returns `false` once the execution has halted.
    pub fn step_partial_sync<P: Probe, R: Recorder>(
        &mut self,
        core: &mut ExecutionCore<P, R>,
    ) -> bool {
        if core.is_halted() {
            return false;
        }
        let action = core.with_view(|view| self.adversary.next_action(view));
        core.advance_step();
        let now = core.time();
        let gst = self.adversary.gst();
        let delta = self.adversary.delta().max(1);
        if now >= gst {
            self.force_overdue(core, now, gst, delta);
        }
        match action {
            PartialSyncAction::Deliver { from, to } => core.deliver_one(from, to),
            PartialSyncAction::Crash(id) => {
                // Omissions and crashes draw from ONE budget of `t` faults:
                // a crash that would push the combined total past `t` is
                // refused (and logged), exactly like the core's own
                // over-budget crash handling — otherwise an adversary could
                // silence 2t processors and defeat the model's
                // forced-termination guarantee. Re-crashing an already
                // crashed processor stays the same free no-op it is in the
                // core, never a logged budget violation.
                let t = core.config().t();
                if core.is_crashed(id) {
                    // no-op
                } else if self.omission_faults(t) + core.faults_used() >= t {
                    core.push_trace(agreement_model::TraceEvent::Violation {
                        description: format!(
                            "partial-sync adversary attempted to crash {id} beyond the \
                             shared omission+crash budget t={t}; ignored"
                        ),
                    });
                } else {
                    core.crash(id);
                }
            }
            PartialSyncAction::Stall => {}
            PartialSyncAction::Halt => core.halt(),
        }
        core.record_decision_progress();
        !core.is_halted()
    }
}

impl<A: PartialSyncAdversary + ?Sized, P: Probe, R: Recorder> Scheduler<P, R>
    for PartialSyncScheduler<&mut A>
{
    fn name(&self) -> &'static str {
        self.adversary.name()
    }

    /// Initial sends are flushed eagerly, as in the asynchronous model: the
    /// delivery bound applies to them from the first step.
    fn on_start(&mut self, core: &mut ExecutionCore<P, R>) {
        core.ensure_started();
        core.flush_all_outboxes();
    }

    fn step(&mut self, core: &mut ExecutionCore<P, R>) -> bool {
        self.step_partial_sync(core)
    }

    fn max_time(&self, limits: &RunLimits) -> u64 {
        limits.max_steps
    }

    /// Partial-synchrony running time shares the asynchronous model's chain
    /// metric (the causal depth at the first decision) so strong-vs-weak
    /// adversary comparisons read off the same scale.
    fn longest_chain(&self, core: &ExecutionCore<P, R>) -> u64 {
        core.causal_chain_metric()
    }
}

//! The open execution-model axis: one generic [`Engine`] facade, a runtime
//! [`ModelDescriptor`] per model, and model-erased [`BuiltAdversary`]
//! instances the data-driven layers dispatch through.
//!
//! The paper's results are parameterized by *adversary power*: the strongly
//! adaptive window model (Section 2), full asynchrony (Section 5), and — in
//! the follow-up literature — weaker, curtailed adversaries such as eventual
//! synchrony. This module makes that axis open-ended instead of a closed
//! two-variant enum:
//!
//! * [`ExecutionModel`] is the compile-time face of a model: a marker type
//!   binding an adversary trait object to the scheduler that drives it
//!   ([`WindowModel`], [`AsyncModel`], [`PartialSyncModel`]). Everything the
//!   simulator knows about "which model is this" flows through these
//!   associated items; nothing matches on a model enum.
//! * [`ModelDescriptor`] is the runtime face: a named descriptor (id,
//!   display name, applicable [`RunLimits`] cap) that registries, scenario
//!   specs and reports carry instead of an enum variant. Descriptors compare
//!   by id.
//! * [`Engine`] assembles construction, stepping, running and outcome
//!   snapshots **once**, generically over the model; `WindowEngine`,
//!   `AsyncEngine` and `PartialSyncEngine` are thin source-compatible
//!   aliases over it.
//! * [`BuiltAdversary`] is a model-erased adversary instance: the adversary
//!   factories of `agreement-adversary` return one, and campaign workers run
//!   it against a workspace core without knowing (or matching on) its model.
//!
//! Adding a fourth model therefore touches exactly one axis: implement a
//! `Scheduler`, declare a marker type + descriptor here (or in your own
//! crate — the machinery is generic), and register factories that return
//! [`BuiltAdversary::bind`]-wrapped instances. See DESIGN.md §2 for the
//! partial-synchrony model as a worked example.

use std::any::Any;
use std::marker::PhantomData;

use agreement_model::{
    Bit, FullTrace, InputAssignment, NoTrace, ProtocolBuilder, Recorder, StateDigest, SystemConfig,
};

use crate::adversary::{AsyncAdversary, PartialSyncAdversary, WindowAdversary};
use crate::exec::{AsyncScheduler, ExecutionCore, PartialSyncScheduler, WindowScheduler};
use crate::metrics::{NoProbe, Probe};
use crate::outcome::{RunLimits, RunOutcome};

/// The runtime identity of an execution model: what registries, scenario
/// specs and reports carry instead of a closed enum variant.
///
/// Two descriptors are equal iff their [`id`](ModelDescriptor::id)s are; the
/// canonical instances live behind [`ExecutionModel::descriptor`] and in the
/// [`model_registry`].
#[derive(Debug)]
pub struct ModelDescriptor {
    id: &'static str,
    display: &'static str,
    time_cap: fn(&RunLimits) -> u64,
}

impl ModelDescriptor {
    /// Declares a descriptor. `time_cap` selects which [`RunLimits`] field
    /// caps this model's unit of scheduled time.
    pub const fn new(
        id: &'static str,
        display: &'static str,
        time_cap: fn(&RunLimits) -> u64,
    ) -> Self {
        ModelDescriptor {
            id,
            display,
            time_cap,
        }
    }

    /// The stable machine-readable id (`"windowed"`, `"async"`,
    /// `"partial-sync"`). This is the string reports and scenario metadata
    /// print.
    pub fn id(&self) -> &'static str {
        self.id
    }

    /// The human-readable display name.
    pub fn display_name(&self) -> &'static str {
        self.display
    }

    /// The cap from `limits` that applies to this model's time unit.
    pub fn time_cap(&self, limits: &RunLimits) -> u64 {
        (self.time_cap)(limits)
    }
}

impl PartialEq for ModelDescriptor {
    fn eq(&self, other: &Self) -> bool {
        self.id == other.id
    }
}

impl Eq for ModelDescriptor {}

impl std::hash::Hash for ModelDescriptor {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.id.hash(state);
    }
}

impl std::fmt::Display for ModelDescriptor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.id)
    }
}

fn cap_windows(limits: &RunLimits) -> u64 {
    limits.max_windows
}

fn cap_steps(limits: &RunLimits) -> u64 {
    limits.max_steps
}

/// The strongly adaptive acceptable-window model of Section 2.
pub static WINDOWED: ModelDescriptor = ModelDescriptor::new(
    "windowed",
    "strongly adaptive acceptable-window model (Section 2)",
    cap_windows,
);

/// The fully asynchronous crash/Byzantine model of Section 5.
pub static ASYNC: ModelDescriptor = ModelDescriptor::new(
    "async",
    "fully asynchronous crash/Byzantine model (Section 5)",
    cap_steps,
);

/// The partial-synchrony (eventual-synchrony, omission-fault) model: free
/// scheduling before an adversary-chosen GST, bounded-delay delivery after.
pub static PARTIAL_SYNC: ModelDescriptor = ModelDescriptor::new(
    "partial-sync",
    "partial synchrony with adversary-chosen GST and post-GST delivery bound Δ",
    cap_steps,
);

/// Every execution model this crate ships, in declaration order.
static MODEL_REGISTRY: [&ModelDescriptor; 3] = [&WINDOWED, &ASYNC, &PARTIAL_SYNC];

/// The registry of shipped execution models.
pub fn model_registry() -> &'static [&'static ModelDescriptor] {
    &MODEL_REGISTRY
}

/// Looks a shipped model descriptor up by its id.
pub fn find_model(id: &str) -> Option<&'static ModelDescriptor> {
    model_registry().iter().copied().find(|m| m.id() == id)
}

/// The compile-time face of an execution model: binds an adversary trait
/// object to the scheduler that drives it and to the model's
/// [`ModelDescriptor`].
///
/// A model implementation composes [`ExecutionCore`] primitives through a
/// `Scheduler`; this trait is the static glue [`Engine`] and
/// [`BuiltAdversary`] dispatch through, so no layer above the schedulers
/// needs to enumerate models.
pub trait ExecutionModel: 'static {
    /// The adversary trait object this model's scheduler consults.
    type Adversary: ?Sized + 'static;

    /// The model's runtime descriptor.
    fn descriptor() -> &'static ModelDescriptor;

    /// Idempotent construction-time setup beyond what `Scheduler::on_start`
    /// performs on the first run call (e.g. the asynchronous model flushes
    /// initial sends eagerly so step-wise drivers see them immediately).
    fn prepare<P: Probe, R: Recorder>(core: &mut ExecutionCore<P, R>);

    /// Runs `core` under `adversary` until every correct processor decided,
    /// the adversary halted, or the model's time cap from `limits` elapsed.
    fn run<P: Probe, R: Recorder>(
        core: &mut ExecutionCore<P, R>,
        adversary: &mut Self::Adversary,
        limits: RunLimits,
    ) -> RunOutcome;

    /// The longest-chain metric this model reports in its outcome.
    fn chain_metric<P: Probe, R: Recorder>(core: &ExecutionCore<P, R>) -> u64;

    /// The name of a concrete adversary of this model.
    fn adversary_name(adversary: &Self::Adversary) -> &'static str;
}

/// Marker type of the strongly adaptive acceptable-window model.
#[derive(Debug, Clone, Copy, Default)]
pub struct WindowModel;

impl ExecutionModel for WindowModel {
    type Adversary = dyn WindowAdversary;

    fn descriptor() -> &'static ModelDescriptor {
        &WINDOWED
    }

    fn prepare<P: Probe, R: Recorder>(_core: &mut ExecutionCore<P, R>) {}

    fn run<P: Probe, R: Recorder>(
        core: &mut ExecutionCore<P, R>,
        adversary: &mut Self::Adversary,
        limits: RunLimits,
    ) -> RunOutcome {
        let mut scheduler = WindowScheduler::new(adversary);
        core.run(&mut scheduler, limits)
    }

    fn chain_metric<P: Probe, R: Recorder>(core: &ExecutionCore<P, R>) -> u64 {
        core.windowed_chain_metric()
    }

    fn adversary_name(adversary: &Self::Adversary) -> &'static str {
        adversary.name()
    }
}

/// Marker type of the fully asynchronous crash/Byzantine model.
#[derive(Debug, Clone, Copy, Default)]
pub struct AsyncModel;

impl ExecutionModel for AsyncModel {
    type Adversary = dyn AsyncAdversary;

    fn descriptor() -> &'static ModelDescriptor {
        &ASYNC
    }

    /// The asynchronous model performs every processor's initial sending step
    /// at construction: the adversary schedules deliveries from the very
    /// first action.
    fn prepare<P: Probe, R: Recorder>(core: &mut ExecutionCore<P, R>) {
        core.ensure_started();
        core.flush_all_outboxes();
        core.record_decision_progress();
    }

    fn run<P: Probe, R: Recorder>(
        core: &mut ExecutionCore<P, R>,
        adversary: &mut Self::Adversary,
        limits: RunLimits,
    ) -> RunOutcome {
        let mut scheduler = AsyncScheduler::new(adversary);
        core.run(&mut scheduler, limits)
    }

    fn chain_metric<P: Probe, R: Recorder>(core: &ExecutionCore<P, R>) -> u64 {
        core.causal_chain_metric()
    }

    fn adversary_name(adversary: &Self::Adversary) -> &'static str {
        adversary.name()
    }
}

/// Marker type of the partial-synchrony (eventual-synchrony) model.
#[derive(Debug, Clone, Copy, Default)]
pub struct PartialSyncModel;

impl ExecutionModel for PartialSyncModel {
    type Adversary = dyn PartialSyncAdversary;

    fn descriptor() -> &'static ModelDescriptor {
        &PARTIAL_SYNC
    }

    /// Like the asynchronous model, initial sends are flushed eagerly: the
    /// adversary (and the post-GST delivery bound) applies to them from the
    /// first step.
    fn prepare<P: Probe, R: Recorder>(core: &mut ExecutionCore<P, R>) {
        core.ensure_started();
        core.flush_all_outboxes();
        core.record_decision_progress();
    }

    fn run<P: Probe, R: Recorder>(
        core: &mut ExecutionCore<P, R>,
        adversary: &mut Self::Adversary,
        limits: RunLimits,
    ) -> RunOutcome {
        let mut scheduler = PartialSyncScheduler::new(adversary);
        core.run(&mut scheduler, limits)
    }

    fn chain_metric<P: Probe, R: Recorder>(core: &ExecutionCore<P, R>) -> u64 {
        core.causal_chain_metric()
    }

    fn adversary_name(adversary: &Self::Adversary) -> &'static str {
        adversary.name()
    }
}

/// One execution of model `M`: the single engine facade behind
/// `WindowEngine`, `AsyncEngine` and `PartialSyncEngine`.
///
/// Construction, accessors, `run` and `outcome` are assembled once here,
/// generically over the model; the per-model aliases only add their
/// idiomatic step methods (`step_window` / `step`).
#[derive(Debug)]
pub struct Engine<M: ExecutionModel, P: Probe = NoProbe, R: Recorder = FullTrace> {
    core: ExecutionCore<P, R>,
    _model: PhantomData<M>,
}

impl<M: ExecutionModel> Engine<M, NoProbe, FullTrace> {
    /// Creates an engine for `cfg.n()` processors with the given inputs,
    /// running the model's construction-time setup (the asynchronous and
    /// partial-synchrony models flush initial sends here).
    ///
    /// # Panics
    ///
    /// Panics if `inputs` does not assign exactly `cfg.n()` bits.
    pub fn new(
        cfg: SystemConfig,
        inputs: InputAssignment,
        builder: &dyn ProtocolBuilder,
        master_seed: u64,
    ) -> Self {
        Engine::with_probe(cfg, inputs, builder, master_seed, NoProbe)
    }
}

impl<M: ExecutionModel, P: Probe> Engine<M, P, FullTrace> {
    /// Creates a trace-keeping engine whose execution is observed by `probe`.
    ///
    /// # Panics
    ///
    /// Panics if `inputs` does not assign exactly `cfg.n()` bits.
    pub fn with_probe(
        cfg: SystemConfig,
        inputs: InputAssignment,
        builder: &dyn ProtocolBuilder,
        master_seed: u64,
        probe: P,
    ) -> Self {
        Engine::with_parts(cfg, inputs, builder, master_seed, probe, FullTrace::new())
    }
}

impl<M: ExecutionModel, P: Probe, R: Recorder> Engine<M, P, R> {
    /// Creates an engine with an explicit probe and recorder (pass
    /// [`NoTrace`](agreement_model::NoTrace) to compile trace emission out).
    ///
    /// # Panics
    ///
    /// Panics if `inputs` does not assign exactly `cfg.n()` bits.
    pub fn with_parts(
        cfg: SystemConfig,
        inputs: InputAssignment,
        builder: &dyn ProtocolBuilder,
        master_seed: u64,
        probe: P,
        recorder: R,
    ) -> Self {
        let mut core =
            ExecutionCore::with_parts(cfg, inputs, builder, master_seed, probe, recorder);
        M::prepare(&mut core);
        Engine {
            core,
            _model: PhantomData,
        }
    }

    /// The system configuration.
    pub fn config(&self) -> SystemConfig {
        self.core.config()
    }

    /// The input assignment of this execution.
    pub fn inputs(&self) -> &InputAssignment {
        self.core.inputs()
    }

    /// This model's runtime descriptor.
    pub fn model(&self) -> &'static ModelDescriptor {
        M::descriptor()
    }

    /// Scheduler time elapsed so far (windows or steps, per the model).
    pub fn time(&self) -> u64 {
        self.core.time()
    }

    /// The current output bits of all processors, in identity order.
    pub fn decisions(&self) -> impl Iterator<Item = Option<Bit>> + '_ {
        self.core.decisions()
    }

    /// The adversary-visible digests of all processors, in identity order.
    pub fn digests(&self) -> impl Iterator<Item = StateDigest> + '_ {
        self.core.digests()
    }

    /// Which processors have been crashed so far, in identity order.
    pub fn crashed(&self) -> impl Iterator<Item = bool> + '_ {
        self.core.crashed()
    }

    /// Which processors have been declared Byzantine-corrupted so far.
    pub fn corrupted(&self) -> &[bool] {
        self.core.corrupted()
    }

    /// `true` once every processor has written its output bit.
    pub fn all_decided(&self) -> bool {
        self.core.all_decided()
    }

    /// `true` once every non-crashed processor has written its output bit.
    pub fn all_correct_decided(&self) -> bool {
        self.core.all_correct_decided()
    }

    /// Number of faults (crashes plus corruptions) charged so far.
    pub fn faults_used(&self) -> usize {
        self.core.faults_used()
    }

    /// Read access to the shared execution core driving this engine.
    pub fn core(&self) -> &ExecutionCore<P, R> {
        &self.core
    }

    /// Mutable access to the core, for scheduler driving within the crate.
    pub(crate) fn core_mut(&mut self) -> &mut ExecutionCore<P, R> {
        &mut self.core
    }

    /// Runs the model's schedule chosen by `adversary` until every correct
    /// processor has decided, the adversary halts, or the model's time cap
    /// from `limits` elapses, and reports the outcome.
    pub fn run(&mut self, adversary: &mut M::Adversary, limits: RunLimits) -> RunOutcome {
        M::run(&mut self.core, adversary, limits)
    }

    /// Produces the outcome snapshot of the execution so far, reporting the
    /// model's chain metric. The trace is moved, not cloned: a subsequent
    /// snapshot reports an empty trace.
    pub fn outcome(&mut self) -> RunOutcome {
        let chain = M::chain_metric(&self.core);
        self.core.outcome(chain)
    }
}

/// A model-erased adversary instance: what an
/// `AdversaryFactory` builds and what campaign workers run, without any
/// layer in between matching on the model.
///
/// A built adversary bundles a boxed adversary trait object with its
/// [`ExecutionModel`] glue; [`BuiltAdversary::run`] (campaign cores) and
/// [`BuiltAdversary::run_traced`] (diagnostic cores) drive a core through
/// the model's scheduler. The model-specific boxes can be recovered with
/// [`BuiltAdversary::into_model`] where a caller genuinely needs one (e.g.
/// to drive an engine step by step).
pub struct BuiltAdversary {
    inner: Box<dyn ErasedAdversary>,
}

impl std::fmt::Debug for BuiltAdversary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BuiltAdversary")
            .field("model", &self.model().id())
            .field("name", &self.name())
            .finish()
    }
}

/// Object-safe projection of [`ExecutionModel`] over a concrete boxed
/// adversary. The two `run_*` entry points cover the only probe/recorder
/// combinations the data-driven layers use: trace-free campaign cores and
/// trace-keeping diagnostic cores. (Probe-instrumented runs drive an
/// [`Engine`] directly.)
trait ErasedAdversary: Any {
    fn model(&self) -> &'static ModelDescriptor;
    fn name(&self) -> &'static str;
    fn run_campaign(
        &mut self,
        core: &mut ExecutionCore<NoProbe, NoTrace>,
        limits: RunLimits,
    ) -> RunOutcome;
    fn run_traced(
        &mut self,
        core: &mut ExecutionCore<NoProbe, FullTrace>,
        limits: RunLimits,
    ) -> RunOutcome;
    fn into_any(self: Box<Self>) -> Box<dyn Any>;
}

/// A boxed adversary bound to its model's static glue.
struct Bound<M: ExecutionModel> {
    adversary: Box<M::Adversary>,
}

impl<M: ExecutionModel> ErasedAdversary for Bound<M> {
    fn model(&self) -> &'static ModelDescriptor {
        M::descriptor()
    }

    fn name(&self) -> &'static str {
        M::adversary_name(&self.adversary)
    }

    fn run_campaign(
        &mut self,
        core: &mut ExecutionCore<NoProbe, NoTrace>,
        limits: RunLimits,
    ) -> RunOutcome {
        M::run(core, &mut self.adversary, limits)
    }

    fn run_traced(
        &mut self,
        core: &mut ExecutionCore<NoProbe, FullTrace>,
        limits: RunLimits,
    ) -> RunOutcome {
        M::run(core, &mut self.adversary, limits)
    }

    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

impl BuiltAdversary {
    /// Binds a boxed adversary to its model. This is the open extension
    /// point: any [`ExecutionModel`] works, including ones declared outside
    /// this crate.
    pub fn bind<M: ExecutionModel>(adversary: Box<M::Adversary>) -> Self {
        BuiltAdversary {
            inner: Box::new(Bound::<M> { adversary }),
        }
    }

    /// A strongly adaptive acceptable-window scheduler (Section 2).
    pub fn windowed(adversary: Box<dyn WindowAdversary>) -> Self {
        BuiltAdversary::bind::<WindowModel>(adversary)
    }

    /// A fully asynchronous step scheduler (Section 5).
    pub fn asynchronous(adversary: Box<dyn AsyncAdversary>) -> Self {
        BuiltAdversary::bind::<AsyncModel>(adversary)
    }

    /// A partial-synchrony scheduler (eventual synchrony with omissions).
    pub fn partial_sync(adversary: Box<dyn PartialSyncAdversary>) -> Self {
        BuiltAdversary::bind::<PartialSyncModel>(adversary)
    }

    /// The model this instance schedules.
    pub fn model(&self) -> &'static ModelDescriptor {
        self.inner.model()
    }

    /// The instance's human-readable name.
    pub fn name(&self) -> &'static str {
        self.inner.name()
    }

    /// Runs one full execution on a trace-free campaign core.
    pub fn run(
        &mut self,
        core: &mut ExecutionCore<NoProbe, NoTrace>,
        limits: RunLimits,
    ) -> RunOutcome {
        self.inner.run_campaign(core, limits)
    }

    /// Runs one full execution on a trace-keeping diagnostic core.
    pub fn run_traced(
        &mut self,
        core: &mut ExecutionCore<NoProbe, FullTrace>,
        limits: RunLimits,
    ) -> RunOutcome {
        self.inner.run_traced(core, limits)
    }

    /// Recovers the boxed model-specific adversary, if this instance belongs
    /// to model `M`.
    pub fn into_model<M: ExecutionModel>(self) -> Option<Box<M::Adversary>> {
        self.inner
            .into_any()
            .downcast::<Bound<M>>()
            .ok()
            .map(|bound| bound.adversary)
    }

    /// Unwraps a windowed scheduler; `None` for other models.
    pub fn into_window(self) -> Option<Box<dyn WindowAdversary>> {
        self.into_model::<WindowModel>()
    }

    /// Unwraps an asynchronous scheduler; `None` for other models.
    pub fn into_async(self) -> Option<Box<dyn AsyncAdversary>> {
        self.into_model::<AsyncModel>()
    }

    /// Unwraps a partial-synchrony scheduler; `None` for other models.
    pub fn into_partial_sync(self) -> Option<Box<dyn PartialSyncAdversary>> {
        self.into_model::<PartialSyncModel>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::{BenignEventualAdversary, FairAsyncAdversary, FullDeliveryAdversary};

    #[test]
    fn descriptors_compare_by_id_and_display_their_id() {
        assert_eq!(&WINDOWED, &WINDOWED);
        assert_ne!(&WINDOWED, &ASYNC);
        assert_eq!(WINDOWED.to_string(), "windowed");
        assert_eq!(ASYNC.to_string(), "async");
        assert_eq!(PARTIAL_SYNC.to_string(), "partial-sync");
    }

    #[test]
    fn registry_resolves_all_shipped_models() {
        assert_eq!(model_registry().len(), 3);
        assert_eq!(find_model("windowed"), Some(&WINDOWED));
        assert_eq!(find_model("async"), Some(&ASYNC));
        assert_eq!(find_model("partial-sync"), Some(&PARTIAL_SYNC));
        assert_eq!(find_model("lockstep"), None);
    }

    #[test]
    fn time_caps_select_the_right_limit_field() {
        let limits = RunLimits {
            max_windows: 7,
            max_steps: 99,
        };
        assert_eq!(WINDOWED.time_cap(&limits), 7);
        assert_eq!(ASYNC.time_cap(&limits), 99);
        assert_eq!(PARTIAL_SYNC.time_cap(&limits), 99);
    }

    #[test]
    fn built_adversaries_report_model_and_name_and_downcast() {
        let built = BuiltAdversary::windowed(Box::new(FullDeliveryAdversary));
        assert_eq!(built.model(), &WINDOWED);
        assert_eq!(built.name(), "full-delivery");
        assert!(built.into_window().is_some());

        let built = BuiltAdversary::asynchronous(Box::new(FairAsyncAdversary::default()));
        assert_eq!(built.model(), &ASYNC);
        assert!(built.into_partial_sync().is_none());

        let built = BuiltAdversary::partial_sync(Box::new(BenignEventualAdversary::default()));
        assert_eq!(built.model(), &PARTIAL_SYNC);
        assert_eq!(built.name(), "benign-eventual");
        assert!(built.into_partial_sync().is_some());
    }
}

//! The acceptable-window engine: executions of the strongly adaptive model.
//!
//! The strongly adaptive adversary (Section 2) is constrained to produce
//! executions that decompose into adjacent, disjoint *acceptable windows*
//! (Definition 1). [`WindowEngine`] is a thin alias of the generic
//! [`Engine`](crate::Engine) facade bound to [`WindowModel`]: everything but
//! the window-wise stepping lives in the shared facade and the
//! [`WindowScheduler`](crate::exec::WindowScheduler). Per window:
//!
//! 1. **Sending phase** — every non-crashed processor takes a sending step:
//!    the messages it computed in response to the previous window's deliveries
//!    are placed into the buffer. (A second sending step without intervening
//!    receipts would have no effect, exactly as the paper specifies, because
//!    the outbox is emptied by the first one.)
//! 2. **Adversary choice** — the full-information adversary inspects all
//!    states and all freshly sent messages and picks the window's reset set
//!    `R` and delivery sets `S_1, ..., S_n`, validated against Definition 1.
//! 3. **Receiving phase** — each processor `i` receives, and immediately
//!    processes, the messages just sent to it by senders in `S_i`. Messages
//!    from senders outside `S_i` are never delivered (they are discarded at
//!    the start of the next window).
//! 4. **Resetting phase** — the processors in `R` have their memories erased.
//!
//! Running time is measured in acceptable windows, as in Section 2.

use agreement_model::{FullTrace, InputAssignment, ProtocolBuilder, Recorder, SystemConfig};

use crate::adversary::WindowAdversary;
use crate::engine::{Engine, WindowModel};
use crate::exec::WindowScheduler;
use crate::metrics::{NoProbe, Probe};
use crate::outcome::{RunLimits, RunOutcome};

/// An execution of the strongly adaptive (acceptable-window) model: the
/// generic [`Engine`] facade bound to [`WindowModel`].
pub type WindowEngine<P = NoProbe, R = FullTrace> = Engine<WindowModel, P, R>;

impl<P: Probe, R: Recorder> Engine<WindowModel, P, R> {
    /// Number of acceptable windows executed so far.
    pub fn windows_elapsed(&self) -> u64 {
        self.time()
    }

    /// Executes one acceptable window chosen by `adversary`.
    ///
    /// # Panics
    ///
    /// Panics if the adversary returns a window violating Definition 1 — that
    /// is a bug in the adversary implementation, not a legitimate execution.
    pub fn step_window(&mut self, adversary: &mut dyn WindowAdversary) {
        WindowScheduler::new(adversary).step_window(self.core_mut());
    }
}

/// Convenience: build a fresh trace-keeping core, run it against `adversary`,
/// return the outcome. Equivalent to driving a [`WindowEngine`].
pub fn run_windowed(
    cfg: SystemConfig,
    inputs: InputAssignment,
    builder: &dyn ProtocolBuilder,
    adversary: &mut dyn WindowAdversary,
    master_seed: u64,
    limits: RunLimits,
) -> RunOutcome {
    let mut core = crate::exec::ExecutionCore::new(cfg, inputs, builder, master_seed);
    let mut scheduler = WindowScheduler::new(adversary);
    core.run(&mut scheduler, limits)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::{FullDeliveryAdversary, SystemView};
    use crate::window::Window;
    use agreement_model::{Bit, Context, Payload, ProcessorId, Protocol, StateDigest};

    /// A toy protocol that decides once it has heard reports from everyone:
    /// it decides the majority value (ties -> One). One window suffices under
    /// full delivery.
    #[derive(Debug)]
    struct MajorityOnce {
        input: Bit,
        zeros: usize,
        ones: usize,
        n: usize,
    }

    impl Protocol for MajorityOnce {
        fn on_start(&mut self, ctx: &mut dyn Context) {
            ctx.broadcast(Payload::Report {
                round: 1,
                value: self.input,
            });
        }

        fn on_message(&mut self, _from: ProcessorId, payload: &Payload, ctx: &mut dyn Context) {
            if let Payload::Report { round: 1, value } = payload {
                match value {
                    Bit::Zero => self.zeros += 1,
                    Bit::One => self.ones += 1,
                }
                if self.zeros + self.ones == self.n {
                    let decision = if self.ones >= self.zeros {
                        Bit::One
                    } else {
                        Bit::Zero
                    };
                    ctx.decide(decision);
                }
            }
        }

        fn digest(&self) -> StateDigest {
            StateDigest::initial(self.input)
        }
    }

    #[derive(Debug)]
    struct MajorityBuilder;

    impl ProtocolBuilder for MajorityBuilder {
        fn name(&self) -> &'static str {
            "majority-once"
        }

        fn build(&self, _id: ProcessorId, input: Bit, cfg: &SystemConfig) -> Box<dyn Protocol> {
            Box::new(MajorityOnce {
                input,
                zeros: 0,
                ones: 0,
                n: cfg.n(),
            })
        }
    }

    #[test]
    fn full_delivery_run_decides_in_one_window() {
        let cfg = SystemConfig::new(5, 0).unwrap();
        let inputs = InputAssignment::unanimous(5, Bit::One);
        let outcome = run_windowed(
            cfg,
            inputs.clone(),
            &MajorityBuilder,
            &mut FullDeliveryAdversary,
            3,
            RunLimits::small(),
        );
        assert!(outcome.all_correct_decided());
        assert_eq!(outcome.decided_value(), Some(Bit::One));
        assert_eq!(outcome.duration, 1);
        assert_eq!(outcome.first_decision_at, Some(1));
        assert_eq!(outcome.all_decided_at, Some(1));
        assert!(outcome.is_correct(&inputs));
        // Every processor broadcast to all n processors exactly once.
        assert_eq!(outcome.messages_sent, 25);
        assert_eq!(outcome.messages_delivered, 25);
        assert_eq!(outcome.resets_performed, 0);
    }

    #[test]
    fn majority_of_split_inputs_decides_some_input_value() {
        let cfg = SystemConfig::new(6, 0).unwrap();
        let inputs = InputAssignment::split_at(6, 2); // 2 zeros, 4 ones
        let outcome = run_windowed(
            cfg,
            inputs.clone(),
            &MajorityBuilder,
            &mut FullDeliveryAdversary,
            11,
            RunLimits::small(),
        );
        assert_eq!(outcome.decided_value(), Some(Bit::One));
        assert!(outcome.validity_holds(&inputs));
    }

    #[test]
    fn run_respects_window_limit_when_protocol_cannot_decide() {
        /// A protocol that never decides.
        #[derive(Debug)]
        struct Silent;
        impl Protocol for Silent {
            fn on_start(&mut self, _ctx: &mut dyn Context) {}
            fn on_message(&mut self, _f: ProcessorId, _p: &Payload, _c: &mut dyn Context) {}
            fn digest(&self) -> StateDigest {
                StateDigest::initial(Bit::Zero)
            }
        }
        #[derive(Debug)]
        struct SilentBuilder;
        impl ProtocolBuilder for SilentBuilder {
            fn name(&self) -> &'static str {
                "silent"
            }
            fn build(&self, _i: ProcessorId, _b: Bit, _c: &SystemConfig) -> Box<dyn Protocol> {
                Box::new(Silent)
            }
        }
        let cfg = SystemConfig::new(4, 0).unwrap();
        let inputs = InputAssignment::unanimous(4, Bit::Zero);
        let outcome = run_windowed(
            cfg,
            inputs,
            &SilentBuilder,
            &mut FullDeliveryAdversary,
            5,
            RunLimits::windows(17),
        );
        assert!(!outcome.any_decided());
        assert_eq!(outcome.duration, 17);
        assert!(
            outcome.agreement_holds(),
            "no decisions is trivially agreeing"
        );
    }

    #[test]
    fn window_adversary_with_resets_erases_state() {
        /// Adversary that resets processor 0 every window and delivers from everyone.
        struct ResetZero;
        impl WindowAdversary for ResetZero {
            fn name(&self) -> &'static str {
                "reset-zero"
            }
            fn next_window(&mut self, view: &SystemView<'_>) -> Window {
                let all: Vec<ProcessorId> = ProcessorId::all(view.n()).collect();
                Window::uniform(&view.config, vec![ProcessorId::new(0)], all)
            }
        }
        let cfg = SystemConfig::new(6, 1).unwrap();
        let inputs = InputAssignment::unanimous(6, Bit::Zero);
        let mut engine = WindowEngine::new(cfg, inputs, &MajorityBuilder, 5);
        engine.step_window(&mut ResetZero);
        engine.step_window(&mut ResetZero);
        let outcome = engine.outcome();
        assert_eq!(outcome.resets_performed, 2);
        assert_eq!(outcome.trace.reset_count(), 2);
    }

    #[test]
    #[should_panic(expected = "invalid window")]
    fn invalid_adversary_window_panics() {
        struct Broken;
        impl WindowAdversary for Broken {
            fn name(&self) -> &'static str {
                "broken"
            }
            fn next_window(&mut self, view: &SystemView<'_>) -> Window {
                // Delivery sets far too small.
                Window::uniform(&view.config, vec![], vec![])
            }
        }
        let cfg = SystemConfig::new(4, 1).unwrap();
        let inputs = InputAssignment::unanimous(4, Bit::One);
        let mut engine = WindowEngine::new(cfg, inputs, &MajorityBuilder, 5);
        engine.step_window(&mut Broken);
    }

    #[test]
    #[should_panic(expected = "input assignment must cover every processor")]
    fn mismatched_inputs_panic() {
        let cfg = SystemConfig::new(4, 1).unwrap();
        let inputs = InputAssignment::unanimous(3, Bit::One);
        let _ = WindowEngine::new(cfg, inputs, &MajorityBuilder, 5);
    }

    #[test]
    fn stepwise_and_run_produce_identical_outcomes() {
        let cfg = SystemConfig::new(5, 0).unwrap();
        let inputs = InputAssignment::evenly_split(5);
        let run_outcome = run_windowed(
            cfg,
            inputs.clone(),
            &MajorityBuilder,
            &mut FullDeliveryAdversary,
            9,
            RunLimits::small(),
        );
        let mut engine = WindowEngine::new(cfg, inputs, &MajorityBuilder, 9);
        while !engine.all_decided() && engine.windows_elapsed() < RunLimits::small().max_windows {
            engine.step_window(&mut FullDeliveryAdversary);
        }
        let stepped = engine.outcome();
        assert_eq!(stepped.decisions, run_outcome.decisions);
        assert_eq!(stepped.duration, run_outcome.duration);
        assert_eq!(stepped.first_decision_at, run_outcome.first_decision_at);
        assert_eq!(stepped.all_decided_at, run_outcome.all_decided_at);
        assert_eq!(stepped.messages_sent, run_outcome.messages_sent);
        assert_eq!(stepped.messages_delivered, run_outcome.messages_delivered);
    }
}

//! The acceptable-window engine: executions of the strongly adaptive model.
//!
//! The strongly adaptive adversary (Section 2) is constrained to produce
//! executions that decompose into adjacent, disjoint *acceptable windows*
//! (Definition 1). The [`WindowEngine`] drives one such execution:
//!
//! 1. **Sending phase** — every non-crashed processor takes a sending step:
//!    the messages it computed in response to the previous window's deliveries
//!    are placed into the buffer. (A second sending step without intervening
//!    receipts would have no effect, exactly as the paper specifies, because
//!    the outbox is emptied by the first one.)
//! 2. **Adversary choice** — the full-information adversary inspects all
//!    states and all freshly sent messages and picks the window's reset set
//!    `R` and delivery sets `S_1, ..., S_n`, validated against Definition 1.
//! 3. **Receiving phase** — each processor `i` receives, and immediately
//!    processes, the messages just sent to it by senders in `S_i`. Messages
//!    from senders outside `S_i` are never delivered (they are discarded at
//!    the start of the next window).
//! 4. **Resetting phase** — the processors in `R` have their memories erased.
//!
//! Running time is measured in acceptable windows, as in Section 2.

use agreement_model::{
    Bit, InputAssignment, ProcessorId, ProtocolBuilder, StateDigest, SystemConfig, Trace,
    TraceEvent,
};

use crate::adversary::{SystemView, WindowAdversary};
use crate::buffer::MessageBuffer;
use crate::harness::ProcessorHarness;
use crate::outcome::{RunLimits, RunOutcome};
use crate::window::Window;

/// An execution of the strongly adaptive (acceptable-window) model.
#[derive(Debug)]
pub struct WindowEngine {
    cfg: SystemConfig,
    inputs: InputAssignment,
    harnesses: Vec<ProcessorHarness>,
    buffer: MessageBuffer,
    trace: Trace,
    window_index: u64,
    resets_performed: u64,
    first_decision_at: Option<u64>,
    all_decided_at: Option<u64>,
    started: bool,
}

impl WindowEngine {
    /// Creates an engine for `cfg.n()` processors with the given inputs.
    ///
    /// # Panics
    ///
    /// Panics if `inputs` does not assign exactly `cfg.n()` bits.
    pub fn new(
        cfg: SystemConfig,
        inputs: InputAssignment,
        builder: &dyn ProtocolBuilder,
        master_seed: u64,
    ) -> Self {
        assert_eq!(
            inputs.len(),
            cfg.n(),
            "input assignment must cover every processor"
        );
        let harnesses = ProcessorId::all(cfg.n())
            .map(|id| ProcessorHarness::new(id, inputs.bit(id.index()), cfg, builder, master_seed))
            .collect();
        WindowEngine {
            cfg,
            inputs,
            harnesses,
            buffer: MessageBuffer::new(),
            trace: Trace::new(),
            window_index: 0,
            resets_performed: 0,
            first_decision_at: None,
            all_decided_at: None,
            started: false,
        }
    }

    /// The system configuration.
    pub fn config(&self) -> SystemConfig {
        self.cfg
    }

    /// The input assignment of this execution.
    pub fn inputs(&self) -> &InputAssignment {
        &self.inputs
    }

    /// Number of acceptable windows executed so far.
    pub fn windows_elapsed(&self) -> u64 {
        self.window_index
    }

    /// The current output bits of all processors.
    pub fn decisions(&self) -> Vec<Option<Bit>> {
        self.harnesses.iter().map(ProcessorHarness::decision).collect()
    }

    /// The adversary-visible digests of all processors.
    pub fn digests(&self) -> Vec<StateDigest> {
        self.harnesses.iter().map(ProcessorHarness::digest).collect()
    }

    /// `true` once every processor has written its output bit.
    pub fn all_decided(&self) -> bool {
        self.harnesses.iter().all(|h| h.decision().is_some())
    }

    fn ensure_started(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        for harness in &mut self.harnesses {
            harness.start();
        }
    }

    /// Executes one acceptable window chosen by `adversary`.
    ///
    /// # Panics
    ///
    /// Panics if the adversary returns a window violating Definition 1 — that
    /// is a bug in the adversary implementation, not a legitimate execution.
    pub fn step_window(&mut self, adversary: &mut dyn WindowAdversary) {
        self.ensure_started();
        // Anything not delivered in the previous window is never delivered.
        self.buffer.discard_undelivered();

        // Sending phase.
        for harness in &mut self.harnesses {
            if harness.is_crashed() {
                continue;
            }
            for envelope in harness.take_outbox() {
                self.trace.push(TraceEvent::Sent {
                    from: envelope.sender,
                    to: envelope.recipient,
                });
                self.buffer.enqueue(envelope);
            }
        }

        // Adversary chooses the window with full information.
        let window = {
            let digests = self.digests();
            let outputs = self.decisions();
            let crashed: Vec<bool> =
                self.harnesses.iter().map(ProcessorHarness::is_crashed).collect();
            let view = SystemView {
                config: self.cfg,
                time: self.window_index,
                digests: &digests,
                outputs: &outputs,
                crashed: &crashed,
                buffer: &self.buffer,
            };
            let window = adversary.next_window(&view);
            if let Err(err) = window.validate(&self.cfg) {
                panic!(
                    "adversary {:?} produced an invalid window at index {}: {err}",
                    adversary.name(),
                    self.window_index
                );
            }
            window
        };
        self.trace.push(TraceEvent::WindowStarted {
            index: self.window_index,
        });

        self.apply_window(&window);
        self.window_index += 1;
        self.record_decision_progress();
    }

    fn apply_window(&mut self, window: &Window) {
        // Receiving phase: deliver, per recipient, the messages just sent by
        // the senders in S_i, processing each one immediately.
        for recipient in ProcessorId::all(self.cfg.n()) {
            let before = self.harnesses[recipient.index()].decision();
            for &sender in window.delivery_set(recipient.index()) {
                let payloads = self.buffer.drain_channel(sender, recipient);
                for payload in payloads {
                    self.trace.push(TraceEvent::Delivered {
                        from: sender,
                        to: recipient,
                    });
                    self.harnesses[recipient.index()].deliver(sender, &payload);
                }
            }
            let after = self.harnesses[recipient.index()].decision();
            if before.is_none() {
                if let Some(value) = after {
                    self.trace.push(TraceEvent::Decided {
                        id: recipient,
                        value,
                        at: self.window_index,
                    });
                }
            }
        }

        // Resetting phase.
        for &id in window.resets() {
            self.harnesses[id.index()].reset();
            self.resets_performed += 1;
            self.trace.push(TraceEvent::Reset { id });
        }
    }

    fn record_decision_progress(&mut self) {
        if self.first_decision_at.is_none() && self.harnesses.iter().any(|h| h.decision().is_some())
        {
            self.first_decision_at = Some(self.window_index);
        }
        if self.all_decided_at.is_none() && self.all_decided() {
            self.all_decided_at = Some(self.window_index);
        }
    }

    /// Runs windows chosen by `adversary` until every processor has decided or
    /// `limits.max_windows` windows have elapsed, and reports the outcome.
    pub fn run(&mut self, adversary: &mut dyn WindowAdversary, limits: RunLimits) -> RunOutcome {
        self.ensure_started();
        self.record_decision_progress();
        while !self.all_decided() && self.window_index < limits.max_windows {
            self.step_window(adversary);
        }
        self.outcome()
    }

    /// Produces the outcome snapshot of the execution so far.
    pub fn outcome(&self) -> RunOutcome {
        let violations: Vec<String> = self
            .harnesses
            .iter()
            .flat_map(|h| h.violations().iter().cloned())
            .chain(self.validity_violations())
            .collect();
        RunOutcome {
            decisions: self.decisions(),
            crashed: self.harnesses.iter().map(ProcessorHarness::is_crashed).collect(),
            duration: self.window_index,
            first_decision_at: self.first_decision_at,
            all_decided_at: self.all_decided_at,
            violations,
            messages_sent: self.buffer.enqueued_count(),
            messages_delivered: self.buffer.delivered_count(),
            resets_performed: self.resets_performed,
            crashes_performed: 0,
            longest_chain: self.first_decision_at.unwrap_or(0),
            halted_by_adversary: false,
            trace: self.trace.clone(),
        }
    }

    fn validity_violations(&self) -> Vec<String> {
        let mut violations = Vec::new();
        if let Some(unanimous) = self.inputs.unanimous_value() {
            for harness in &self.harnesses {
                if let Some(decided) = harness.decision() {
                    if decided != unanimous {
                        violations.push(format!(
                            "{} decided {decided} although every input is {unanimous}",
                            harness.id()
                        ));
                    }
                }
            }
        }
        let mut decided_values = self.harnesses.iter().filter_map(ProcessorHarness::decision);
        if let Some(first) = decided_values.next() {
            if decided_values.any(|other| other != first) {
                violations.push("processors decided conflicting values".to_string());
            }
        }
        violations
    }
}

/// Convenience: build an engine, run it against `adversary`, return the outcome.
pub fn run_windowed(
    cfg: SystemConfig,
    inputs: InputAssignment,
    builder: &dyn ProtocolBuilder,
    adversary: &mut dyn WindowAdversary,
    master_seed: u64,
    limits: RunLimits,
) -> RunOutcome {
    let mut engine = WindowEngine::new(cfg, inputs, builder, master_seed);
    engine.run(adversary, limits)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::FullDeliveryAdversary;
    use agreement_model::{Context, Payload, Protocol, StateDigest};

    /// A toy protocol that decides once it has heard reports from everyone:
    /// it decides the majority value (ties -> One). One window suffices under
    /// full delivery.
    #[derive(Debug)]
    struct MajorityOnce {
        input: Bit,
        zeros: usize,
        ones: usize,
        n: usize,
    }

    impl Protocol for MajorityOnce {
        fn on_start(&mut self, ctx: &mut dyn Context) {
            ctx.broadcast(Payload::Report {
                round: 1,
                value: self.input,
            });
        }

        fn on_message(&mut self, _from: ProcessorId, payload: &Payload, ctx: &mut dyn Context) {
            if let Payload::Report { round: 1, value } = payload {
                match value {
                    Bit::Zero => self.zeros += 1,
                    Bit::One => self.ones += 1,
                }
                if self.zeros + self.ones == self.n {
                    let decision = if self.ones >= self.zeros { Bit::One } else { Bit::Zero };
                    ctx.decide(decision);
                }
            }
        }

        fn digest(&self) -> StateDigest {
            StateDigest::initial(self.input)
        }
    }

    #[derive(Debug)]
    struct MajorityBuilder;

    impl ProtocolBuilder for MajorityBuilder {
        fn name(&self) -> &'static str {
            "majority-once"
        }

        fn build(&self, _id: ProcessorId, input: Bit, cfg: &SystemConfig) -> Box<dyn Protocol> {
            Box::new(MajorityOnce {
                input,
                zeros: 0,
                ones: 0,
                n: cfg.n(),
            })
        }
    }

    #[test]
    fn full_delivery_run_decides_in_one_window() {
        let cfg = SystemConfig::new(5, 0).unwrap();
        let inputs = InputAssignment::unanimous(5, Bit::One);
        let outcome = run_windowed(
            cfg,
            inputs.clone(),
            &MajorityBuilder,
            &mut FullDeliveryAdversary,
            3,
            RunLimits::small(),
        );
        assert!(outcome.all_correct_decided());
        assert_eq!(outcome.decided_value(), Some(Bit::One));
        assert_eq!(outcome.duration, 1);
        assert_eq!(outcome.first_decision_at, Some(1));
        assert_eq!(outcome.all_decided_at, Some(1));
        assert!(outcome.is_correct(&inputs));
        // Every processor broadcast to all n processors exactly once.
        assert_eq!(outcome.messages_sent, 25);
        assert_eq!(outcome.messages_delivered, 25);
        assert_eq!(outcome.resets_performed, 0);
    }

    #[test]
    fn majority_of_split_inputs_decides_some_input_value() {
        let cfg = SystemConfig::new(6, 0).unwrap();
        let inputs = InputAssignment::split_at(6, 2); // 2 zeros, 4 ones
        let outcome = run_windowed(
            cfg,
            inputs.clone(),
            &MajorityBuilder,
            &mut FullDeliveryAdversary,
            11,
            RunLimits::small(),
        );
        assert_eq!(outcome.decided_value(), Some(Bit::One));
        assert!(outcome.validity_holds(&inputs));
    }

    #[test]
    fn run_respects_window_limit_when_protocol_cannot_decide() {
        /// A protocol that never decides.
        #[derive(Debug)]
        struct Silent;
        impl Protocol for Silent {
            fn on_start(&mut self, _ctx: &mut dyn Context) {}
            fn on_message(&mut self, _f: ProcessorId, _p: &Payload, _c: &mut dyn Context) {}
            fn digest(&self) -> StateDigest {
                StateDigest::initial(Bit::Zero)
            }
        }
        #[derive(Debug)]
        struct SilentBuilder;
        impl ProtocolBuilder for SilentBuilder {
            fn name(&self) -> &'static str {
                "silent"
            }
            fn build(&self, _i: ProcessorId, _b: Bit, _c: &SystemConfig) -> Box<dyn Protocol> {
                Box::new(Silent)
            }
        }
        let cfg = SystemConfig::new(4, 0).unwrap();
        let inputs = InputAssignment::unanimous(4, Bit::Zero);
        let outcome = run_windowed(
            cfg,
            inputs,
            &SilentBuilder,
            &mut FullDeliveryAdversary,
            5,
            RunLimits::windows(17),
        );
        assert!(!outcome.any_decided());
        assert_eq!(outcome.duration, 17);
        assert!(outcome.agreement_holds(), "no decisions is trivially agreeing");
    }

    #[test]
    fn window_adversary_with_resets_erases_state() {
        /// Adversary that resets processor 0 every window and delivers from everyone.
        struct ResetZero;
        impl WindowAdversary for ResetZero {
            fn name(&self) -> &'static str {
                "reset-zero"
            }
            fn next_window(&mut self, view: &SystemView<'_>) -> Window {
                let all: Vec<ProcessorId> = ProcessorId::all(view.n()).collect();
                Window::uniform(&view.config, vec![ProcessorId::new(0)], all)
            }
        }
        let cfg = SystemConfig::new(6, 1).unwrap();
        let inputs = InputAssignment::unanimous(6, Bit::Zero);
        let mut engine = WindowEngine::new(cfg, inputs, &MajorityBuilder, 5);
        engine.step_window(&mut ResetZero);
        engine.step_window(&mut ResetZero);
        let outcome = engine.outcome();
        assert_eq!(outcome.resets_performed, 2);
        assert_eq!(outcome.trace.reset_count(), 2);
    }

    #[test]
    #[should_panic(expected = "invalid window")]
    fn invalid_adversary_window_panics() {
        struct Broken;
        impl WindowAdversary for Broken {
            fn name(&self) -> &'static str {
                "broken"
            }
            fn next_window(&mut self, view: &SystemView<'_>) -> Window {
                // Delivery sets far too small.
                Window::uniform(&view.config, vec![], vec![])
            }
        }
        let cfg = SystemConfig::new(4, 1).unwrap();
        let inputs = InputAssignment::unanimous(4, Bit::One);
        let mut engine = WindowEngine::new(cfg, inputs, &MajorityBuilder, 5);
        engine.step_window(&mut Broken);
    }

    #[test]
    #[should_panic(expected = "input assignment must cover every processor")]
    fn mismatched_inputs_panic() {
        let cfg = SystemConfig::new(4, 1).unwrap();
        let inputs = InputAssignment::unanimous(3, Bit::One);
        let _ = WindowEngine::new(cfg, inputs, &MajorityBuilder, 5);
    }
}

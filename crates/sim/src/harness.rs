//! The per-processor harness: durable state plus the protocol state machine.
//!
//! A [`ProcessorHarness`] owns everything the paper attributes to a single
//! processor: its identity, its immutable input bit, its write-once output
//! bit, its reset counter, its private randomness, the protocol state machine
//! (the erasable "memory"), and the set of messages it has computed but not
//! yet placed into the buffer (its next *sending step*).
//!
//! Resetting a harness erases the protocol state and the pending outgoing
//! messages but keeps the input, output, identity and reset counter — exactly
//! the semantics of the paper's resetting failures.

use agreement_model::{
    Bit, Context, Envelope, OutputRegister, Payload, ProcessorId, ProcessorRng, Protocol,
    ProtocolBuilder, StateDigest, SystemConfig,
};

/// A message computed by the protocol but not yet placed into the buffer —
/// the content of the processor's next *sending step*.
///
/// Broadcasts are staged as a **single** entry holding the payload once; the
/// engine expands the recipient list only when it moves the message into the
/// buffer (where the payload is interned once and shared by handle). The
/// default [`Context::broadcast`] would instead clone the payload per
/// recipient, which is exactly the per-message heap work the campaign hot
/// path cannot afford.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outgoing {
    /// A message addressed to a single recipient.
    One {
        /// The recipient.
        to: ProcessorId,
        /// The message contents.
        payload: Payload,
    },
    /// A message addressed to every processor, the sender included.
    Broadcast {
        /// The message contents, stored once for all `n` recipients.
        payload: Payload,
    },
    /// A message addressed to an explicit set of recipients (the sender only
    /// if it lists itself), stored once for the whole set. The engine interns
    /// the payload once and enqueues one shared reference per listed
    /// recipient, so a committee multicast costs O(|set|), not O(n).
    Multicast {
        /// The recipients, in the order the protocol listed them.
        to: Vec<ProcessorId>,
        /// The message contents, stored once for the whole recipient set.
        payload: Payload,
    },
}

/// Durable (non-erasable) processor state plus engine-facing plumbing.
///
/// `HarnessCore` implements [`Context`]; protocol callbacks receive it as
/// `&mut dyn Context`.
#[derive(Debug)]
pub struct HarnessCore {
    id: ProcessorId,
    cfg: SystemConfig,
    input: Bit,
    output: OutputRegister,
    reset_count: u64,
    crashed: bool,
    rng: ProcessorRng,
    coin_flips: u64,
    outbox: Vec<Outgoing>,
    violations: Vec<String>,
}

impl Context for HarnessCore {
    fn id(&self) -> ProcessorId {
        self.id
    }

    fn config(&self) -> SystemConfig {
        self.cfg
    }

    fn input(&self) -> Bit {
        self.input
    }

    fn send(&mut self, to: ProcessorId, payload: Payload) {
        self.outbox.push(Outgoing::One { to, payload });
    }

    /// Stages one broadcast entry instead of the default per-recipient
    /// `send` loop: the payload is kept once and never cloned, no matter how
    /// many processors it addresses.
    fn broadcast(&mut self, payload: Payload) {
        self.outbox.push(Outgoing::Broadcast { payload });
    }

    /// Stages one multicast entry instead of the default per-recipient
    /// `send` loop: the payload is kept once for the whole recipient set and
    /// the engine interns it once in the buffer.
    fn multicast(&mut self, recipients: &[ProcessorId], payload: Payload) {
        self.outbox.push(Outgoing::Multicast {
            to: recipients.to_vec(),
            payload,
        });
    }

    fn random_bit(&mut self) -> Bit {
        self.coin_flips += 1;
        self.rng.bit()
    }

    fn random_range(&mut self, bound: u64) -> u64 {
        self.coin_flips += 1;
        self.rng.range(bound)
    }

    fn random_ticket(&mut self) -> u64 {
        self.coin_flips += 1;
        self.rng.ticket()
    }

    fn decide(&mut self, value: Bit) {
        if let Err(err) = self.output.write(value) {
            self.violations.push(format!("{}: {err}", self.id));
        }
    }

    fn decision(&self) -> Option<Bit> {
        self.output.get()
    }
}

/// A processor: durable state, private randomness and the protocol "memory".
#[derive(Debug)]
pub struct ProcessorHarness {
    core: HarnessCore,
    protocol: Box<dyn Protocol>,
    started: bool,
}

impl ProcessorHarness {
    /// Builds the harness for processor `id` with the given input bit.
    ///
    /// The protocol instance is created through `builder`; the processor's
    /// private random stream is derived deterministically from `master_seed`
    /// and `id`.
    pub fn new(
        id: ProcessorId,
        input: Bit,
        cfg: SystemConfig,
        builder: &dyn ProtocolBuilder,
        master_seed: u64,
    ) -> Self {
        let protocol = builder.build(id, input, &cfg);
        ProcessorHarness {
            core: HarnessCore {
                id,
                cfg,
                input,
                output: OutputRegister::new(),
                reset_count: 0,
                crashed: false,
                rng: ProcessorRng::for_processor(master_seed, id),
                coin_flips: 0,
                outbox: Vec::new(),
                violations: Vec::new(),
            },
            protocol,
            started: false,
        }
    }

    /// The processor's identity.
    pub fn id(&self) -> ProcessorId {
        self.core.id
    }

    /// The processor's immutable input bit.
    pub fn input(&self) -> Bit {
        self.core.input
    }

    /// The value of the write-once output bit, if written.
    pub fn decision(&self) -> Option<Bit> {
        self.core.output.get()
    }

    /// Whether the processor has crashed (takes no further steps).
    pub fn is_crashed(&self) -> bool {
        self.core.crashed
    }

    /// How many times the processor has been reset.
    pub fn reset_count(&self) -> u64 {
        self.core.reset_count
    }

    /// How many private random draws (bits, ranges, tickets) the protocol has
    /// made. Durable instrumentation: resets do not clear it.
    pub fn coin_flips(&self) -> u64 {
        self.core.coin_flips
    }

    /// Conflicting-decision violations recorded so far.
    pub fn violations(&self) -> &[String] {
        &self.core.violations
    }

    /// Number of messages waiting in the outbox for the next sending step
    /// (a staged broadcast counts as `n` messages, a staged multicast as one
    /// per listed recipient).
    pub fn outbox_len(&self) -> usize {
        let n = self.core.cfg.n();
        self.core
            .outbox
            .iter()
            .map(|out| match out {
                Outgoing::One { .. } => 1,
                Outgoing::Broadcast { .. } => n,
                Outgoing::Multicast { to, .. } => to.len(),
            })
            .sum()
    }

    /// Re-initializes this harness for a fresh trial in place, reusing the
    /// outbox and violation allocations: a brand-new protocol instance, a
    /// fresh output register and rng stream, zeroed counters. Equivalent to
    /// `ProcessorHarness::new` with the same arguments.
    pub fn reinit(
        &mut self,
        id: ProcessorId,
        input: Bit,
        cfg: SystemConfig,
        builder: &dyn ProtocolBuilder,
        master_seed: u64,
    ) {
        self.protocol = builder.build(id, input, &cfg);
        self.started = false;
        self.core.id = id;
        self.core.cfg = cfg;
        self.core.input = input;
        self.core.output = OutputRegister::new();
        self.core.reset_count = 0;
        self.core.crashed = false;
        self.core.rng = ProcessorRng::for_processor(master_seed, id);
        self.core.coin_flips = 0;
        self.core.outbox.clear();
        self.core.violations.clear();
    }

    /// Runs the protocol's `on_start` callback (idempotent: only the first
    /// call has any effect).
    pub fn start(&mut self) {
        if self.started || self.core.crashed {
            return;
        }
        self.started = true;
        self.protocol.on_start(&mut self.core);
    }

    /// Delivers a message to the processor (a *receiving step*): the protocol
    /// performs its local computation and may queue outgoing messages and/or
    /// write the output bit. Crashed processors ignore deliveries.
    pub fn deliver(&mut self, from: ProcessorId, payload: &Payload) {
        if self.core.crashed {
            return;
        }
        self.protocol.on_message(from, payload, &mut self.core);
    }

    /// Erases the processor's memory (a *resetting step*): clears the pending
    /// outbox and tells the protocol to discard its volatile state. The input
    /// bit, output bit, identity and reset counter are retained.
    pub fn reset(&mut self) {
        if self.core.crashed {
            return;
        }
        self.core.reset_count += 1;
        self.core.outbox.clear();
        self.protocol.on_reset(&mut self.core);
    }

    /// Permanently crashes the processor. Pending outgoing messages that have
    /// not yet been placed in the buffer are lost.
    pub fn crash(&mut self) {
        self.core.crashed = true;
        self.core.outbox.clear();
    }

    /// Drains the staged messages computed since the last sending step (the
    /// contents of the next *sending step*), leaving the outbox empty but its
    /// allocation in place. This is the engines' hot path: broadcasts come
    /// out as single entries for the buffer to intern once.
    pub fn drain_outbox(&mut self) -> std::vec::Drain<'_, Outgoing> {
        self.core.outbox.drain(..)
    }

    /// Takes the messages of the next *sending step* as concrete envelopes,
    /// expanding staged broadcasts into one envelope per recipient (cloning
    /// the payload per extra recipient). Convenience for tests and
    /// diagnostics; engines use [`ProcessorHarness::drain_outbox`].
    pub fn take_outbox(&mut self) -> Vec<Envelope> {
        let n = self.core.cfg.n();
        let sender = self.core.id;
        let mut envelopes = Vec::with_capacity(self.outbox_len());
        for out in self.core.outbox.drain(..) {
            match out {
                Outgoing::One { to, payload } => {
                    envelopes.push(Envelope::new(sender, to, payload));
                }
                Outgoing::Broadcast { payload } => {
                    for to in ProcessorId::all(n) {
                        envelopes.push(Envelope::new(sender, to, payload.clone()));
                    }
                }
                Outgoing::Multicast { to, payload } => {
                    for to in to {
                        envelopes.push(Envelope::new(sender, to, payload.clone()));
                    }
                }
            }
        }
        envelopes
    }

    /// The adversary-visible digest: the protocol's own digest with the
    /// durable output register and reset counter merged in.
    pub fn digest(&self) -> StateDigest {
        let mut digest = self.protocol.digest();
        digest.decided = self.core.output.get();
        digest.reset_count = self.core.reset_count;
        digest
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agreement_model::Payload;

    /// A test protocol: echoes every report back to its sender, decides on the
    /// first report whose round is at least 3, and supports resets by clearing
    /// a counter.
    #[derive(Debug)]
    struct Echo {
        input: Bit,
        seen: u64,
        resets: u64,
    }

    impl Protocol for Echo {
        fn on_start(&mut self, ctx: &mut dyn Context) {
            ctx.broadcast(Payload::Report {
                round: 1,
                value: self.input,
            });
        }

        fn on_message(&mut self, from: ProcessorId, payload: &Payload, ctx: &mut dyn Context) {
            self.seen += 1;
            if let Payload::Report { round, value } = payload {
                ctx.send(
                    from,
                    Payload::Report {
                        round: round + 1,
                        value: *value,
                    },
                );
                if *round >= 3 {
                    ctx.decide(*value);
                }
            }
        }

        fn on_reset(&mut self, _ctx: &mut dyn Context) {
            self.seen = 0;
            self.resets += 1;
        }

        fn digest(&self) -> StateDigest {
            StateDigest {
                round: Some(self.seen + 1),
                estimate: Some(self.input),
                decided: None,
                reset_count: self.resets,
                phase: "echo",
            }
        }
    }

    #[derive(Debug)]
    struct EchoBuilder;

    impl ProtocolBuilder for EchoBuilder {
        fn name(&self) -> &'static str {
            "echo"
        }

        fn build(&self, _id: ProcessorId, input: Bit, _cfg: &SystemConfig) -> Box<dyn Protocol> {
            Box::new(Echo {
                input,
                seen: 0,
                resets: 0,
            })
        }
    }

    fn harness(n: usize) -> ProcessorHarness {
        let cfg = SystemConfig::new(n, 0).unwrap();
        ProcessorHarness::new(ProcessorId::new(0), Bit::One, cfg, &EchoBuilder, 7)
    }

    #[test]
    fn start_broadcasts_and_is_idempotent() {
        let mut h = harness(4);
        h.start();
        assert_eq!(h.outbox_len(), 4);
        h.start();
        assert_eq!(
            h.outbox_len(),
            4,
            "second start must not duplicate messages"
        );
        let out = h.take_outbox();
        assert_eq!(out.len(), 4);
        assert_eq!(h.outbox_len(), 0);
    }

    #[test]
    fn deliver_runs_protocol_and_can_decide() {
        let mut h = harness(4);
        h.start();
        h.take_outbox();
        h.deliver(
            ProcessorId::new(2),
            &Payload::Report {
                round: 5,
                value: Bit::Zero,
            },
        );
        assert_eq!(h.decision(), Some(Bit::Zero));
        // The echo reply is waiting in the outbox.
        assert_eq!(h.outbox_len(), 1);
        let out = h.take_outbox();
        assert_eq!(out[0].recipient, ProcessorId::new(2));
        assert_eq!(out[0].sender, ProcessorId::new(0));
    }

    #[test]
    fn reset_clears_outbox_and_bumps_counter_but_keeps_decision() {
        let mut h = harness(4);
        h.start();
        h.deliver(
            ProcessorId::new(1),
            &Payload::Report {
                round: 3,
                value: Bit::One,
            },
        );
        assert_eq!(h.decision(), Some(Bit::One));
        assert!(h.outbox_len() > 0);
        h.reset();
        assert_eq!(h.outbox_len(), 0);
        assert_eq!(h.reset_count(), 1);
        // Output bit survives the reset, as in the paper's model.
        assert_eq!(h.decision(), Some(Bit::One));
        assert_eq!(h.digest().reset_count, 1);
    }

    #[test]
    fn crashed_processor_ignores_everything() {
        let mut h = harness(4);
        h.start();
        h.crash();
        assert!(h.is_crashed());
        assert_eq!(h.outbox_len(), 0);
        h.deliver(
            ProcessorId::new(1),
            &Payload::Report {
                round: 9,
                value: Bit::One,
            },
        );
        assert_eq!(h.decision(), None);
        h.reset();
        assert_eq!(
            h.reset_count(),
            0,
            "resets do not apply to crashed processors"
        );
    }

    #[test]
    fn conflicting_decisions_are_recorded_as_violations_not_panics() {
        #[derive(Debug)]
        struct DoubleDecider;
        impl Protocol for DoubleDecider {
            fn on_start(&mut self, ctx: &mut dyn Context) {
                ctx.decide(Bit::Zero);
                ctx.decide(Bit::One);
            }
            fn on_message(&mut self, _f: ProcessorId, _p: &Payload, _c: &mut dyn Context) {}
            fn digest(&self) -> StateDigest {
                StateDigest::initial(Bit::Zero)
            }
        }
        #[derive(Debug)]
        struct DoubleBuilder;
        impl ProtocolBuilder for DoubleBuilder {
            fn name(&self) -> &'static str {
                "double"
            }
            fn build(&self, _id: ProcessorId, _i: Bit, _c: &SystemConfig) -> Box<dyn Protocol> {
                Box::new(DoubleDecider)
            }
        }
        let cfg = SystemConfig::new(3, 0).unwrap();
        let mut h = ProcessorHarness::new(ProcessorId::new(1), Bit::Zero, cfg, &DoubleBuilder, 1);
        h.start();
        assert_eq!(h.decision(), Some(Bit::Zero));
        assert_eq!(h.violations().len(), 1);
        assert!(h.violations()[0].contains("conflicting decision"));
    }

    #[test]
    fn broadcast_is_staged_once_but_counts_per_recipient() {
        let mut h = harness(4);
        h.start();
        // One staged entry for a 4-way broadcast, reported as 4 messages.
        assert_eq!(h.core.outbox.len(), 1);
        assert!(matches!(h.core.outbox[0], Outgoing::Broadcast { .. }));
        assert_eq!(h.outbox_len(), 4);
        let drained: Vec<Outgoing> = h.drain_outbox().collect();
        assert_eq!(drained.len(), 1);
        assert_eq!(h.outbox_len(), 0);
    }

    #[test]
    fn multicast_is_staged_once_and_counts_per_listed_recipient() {
        let mut h = harness(8);
        let set = [
            ProcessorId::new(2),
            ProcessorId::new(5),
            ProcessorId::new(0),
        ];
        h.core.multicast(
            &set,
            Payload::Report {
                round: 1,
                value: Bit::One,
            },
        );
        assert_eq!(h.core.outbox.len(), 1, "one staged entry for the set");
        assert!(matches!(h.core.outbox[0], Outgoing::Multicast { .. }));
        assert_eq!(h.outbox_len(), 3);
        let out = h.take_outbox();
        assert_eq!(out.len(), 3);
        let recipients: Vec<usize> = out.iter().map(|e| e.recipient.index()).collect();
        assert_eq!(recipients, vec![2, 5, 0], "slice order preserved");
        assert!(out.iter().all(|e| e.sender == ProcessorId::new(0)));
    }

    #[test]
    fn reinit_reproduces_a_fresh_harness_bit_for_bit() {
        let cfg = SystemConfig::new(4, 0).unwrap();
        let mut reused = ProcessorHarness::new(ProcessorId::new(0), Bit::One, cfg, &EchoBuilder, 7);
        // Dirty every piece of state the reinit must clear.
        reused.start();
        reused.deliver(
            ProcessorId::new(1),
            &Payload::Report {
                round: 3,
                value: Bit::Zero,
            },
        );
        reused.reset();
        assert!(reused.reset_count() > 0);

        reused.reinit(ProcessorId::new(2), Bit::Zero, cfg, &EchoBuilder, 99);
        let mut fresh =
            ProcessorHarness::new(ProcessorId::new(2), Bit::Zero, cfg, &EchoBuilder, 99);
        assert_eq!(reused.id(), fresh.id());
        assert_eq!(reused.input(), fresh.input());
        assert_eq!(reused.decision(), None);
        assert_eq!(reused.reset_count(), 0);
        assert_eq!(reused.coin_flips(), 0);
        assert_eq!(reused.outbox_len(), 0);
        assert!(reused.violations().is_empty());
        assert_eq!(reused.digest(), fresh.digest());
        // The private random stream restarts exactly where a fresh one does.
        assert_eq!(reused.core.random_ticket(), fresh.core.random_ticket());
        assert_eq!(reused.core.random_bit(), fresh.core.random_bit());
    }

    #[test]
    fn digest_merges_durable_output() {
        let mut h = harness(4);
        h.start();
        assert_eq!(h.digest().decided, None);
        h.deliver(
            ProcessorId::new(1),
            &Payload::Report {
                round: 4,
                value: Bit::One,
            },
        );
        assert_eq!(h.digest().decided, Some(Bit::One));
    }

    #[test]
    fn same_seed_gives_reproducible_randomness_across_harnesses() {
        let cfg = SystemConfig::new(4, 0).unwrap();
        let mut a = ProcessorHarness::new(ProcessorId::new(2), Bit::Zero, cfg, &EchoBuilder, 99);
        let mut b = ProcessorHarness::new(ProcessorId::new(2), Bit::Zero, cfg, &EchoBuilder, 99);
        assert_eq!(a.core.random_ticket(), b.core.random_ticket());
        assert_eq!(a.core.random_bit(), b.core.random_bit());
    }
}

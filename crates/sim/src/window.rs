//! Acceptable windows (Definition 1 of the paper).
//!
//! An acceptable window is a consecutive segment of steps in which
//!
//! 1. all `n` processors take sending steps,
//! 2. each processor `i` receives the messages just sent to it by the
//!    processors in a set `S_i` with `|S_i| >= n - t`, and
//! 3. at most `t` resetting steps occur.
//!
//! A [`Window`] is the adversary's choice of the sets `R, S_1, ..., S_n`; the
//! window engine validates it against the configuration before applying it,
//! so an adversary implementation cannot accidentally exceed its power.

use std::collections::BTreeSet;
use std::error::Error;
use std::fmt;

use agreement_model::{ProcessorId, SystemConfig};

/// An adversary's choice of one acceptable window: the reset set `R` and the
/// per-processor delivery sets `S_i`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Window {
    resets: Vec<ProcessorId>,
    deliveries: Vec<Vec<ProcessorId>>,
}

impl Window {
    /// Creates a window from a reset set and per-processor delivery sets.
    ///
    /// `deliveries[i]` is the set `S_i` of senders whose messages processor
    /// `i` receives in this window. Call [`Window::validate`] (the engine does
    /// so automatically) to check it satisfies Definition 1.
    pub fn new(resets: Vec<ProcessorId>, deliveries: Vec<Vec<ProcessorId>>) -> Self {
        Window { resets, deliveries }
    }

    /// The failure-free, full-delivery window: every processor receives from
    /// everyone and nobody is reset.
    pub fn full_delivery(cfg: &SystemConfig) -> Self {
        let all: Vec<ProcessorId> = ProcessorId::all(cfg.n()).collect();
        Window {
            resets: Vec::new(),
            deliveries: vec![all; cfg.n()],
        }
    }

    /// A window applying the same sender set `S` to every processor and the
    /// reset set `R`, i.e. the `R, S, S, ..., S` windows used throughout the
    /// proofs of Lemmas 13 and 14.
    pub fn uniform(
        cfg: &SystemConfig,
        resets: Vec<ProcessorId>,
        senders: Vec<ProcessorId>,
    ) -> Self {
        Window {
            resets,
            deliveries: vec![senders; cfg.n()],
        }
    }

    /// The processors reset at the end of this window.
    pub fn resets(&self) -> &[ProcessorId] {
        &self.resets
    }

    /// The sender set `S_i` for processor `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range for the window's arity.
    pub fn delivery_set(&self, index: usize) -> &[ProcessorId] {
        &self.deliveries[index]
    }

    /// Number of per-processor delivery sets (should equal `n`).
    pub fn arity(&self) -> usize {
        self.deliveries.len()
    }

    /// Checks this window against Definition 1 for the given configuration.
    ///
    /// # Errors
    ///
    /// Returns a [`WindowError`] naming the first violated requirement.
    pub fn validate(&self, cfg: &SystemConfig) -> Result<(), WindowError> {
        let n = cfg.n();
        let t = cfg.t();
        if self.deliveries.len() != n {
            return Err(WindowError::WrongArity {
                expected: n,
                actual: self.deliveries.len(),
            });
        }
        if self.resets.len() > t {
            return Err(WindowError::TooManyResets {
                budget: t,
                actual: self.resets.len(),
            });
        }
        let reset_set: BTreeSet<ProcessorId> = self.resets.iter().copied().collect();
        if reset_set.len() != self.resets.len() {
            return Err(WindowError::DuplicateReset);
        }
        if let Some(bad) = self.resets.iter().find(|p| p.index() >= n) {
            return Err(WindowError::UnknownProcessor { id: *bad });
        }
        for (i, senders) in self.deliveries.iter().enumerate() {
            let set: BTreeSet<ProcessorId> = senders.iter().copied().collect();
            if set.len() != senders.len() {
                return Err(WindowError::DuplicateSender { recipient: i });
            }
            if let Some(bad) = senders.iter().find(|p| p.index() >= n) {
                return Err(WindowError::UnknownProcessor { id: *bad });
            }
            if senders.len() < n.saturating_sub(t) {
                return Err(WindowError::DeliverySetTooSmall {
                    recipient: i,
                    minimum: n - t,
                    actual: senders.len(),
                });
            }
        }
        Ok(())
    }
}

/// A violation of Definition 1 detected while validating a [`Window`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum WindowError {
    /// The window does not provide exactly one delivery set per processor.
    WrongArity {
        /// Expected number of delivery sets (`n`).
        expected: usize,
        /// Provided number of delivery sets.
        actual: usize,
    },
    /// More than `t` resetting steps were requested.
    TooManyResets {
        /// The per-window reset budget `t`.
        budget: usize,
        /// The number of requested resets.
        actual: usize,
    },
    /// The reset set contains a processor twice.
    DuplicateReset,
    /// A delivery set contains a sender twice.
    DuplicateSender {
        /// The recipient whose delivery set is malformed.
        recipient: usize,
    },
    /// Some delivery set is smaller than `n - t`.
    DeliverySetTooSmall {
        /// The recipient whose delivery set is too small.
        recipient: usize,
        /// The minimum allowed size (`n - t`).
        minimum: usize,
        /// The provided size.
        actual: usize,
    },
    /// A processor identity outside `0..n` was referenced.
    UnknownProcessor {
        /// The out-of-range identity.
        id: ProcessorId,
    },
}

impl fmt::Display for WindowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WindowError::WrongArity { expected, actual } => {
                write!(
                    f,
                    "window provides {actual} delivery sets, expected {expected}"
                )
            }
            WindowError::TooManyResets { budget, actual } => {
                write!(f, "window resets {actual} processors, budget is {budget}")
            }
            WindowError::DuplicateReset => write!(f, "reset set contains a duplicate processor"),
            WindowError::DuplicateSender { recipient } => {
                write!(
                    f,
                    "delivery set for processor {recipient} contains a duplicate sender"
                )
            }
            WindowError::DeliverySetTooSmall {
                recipient,
                minimum,
                actual,
            } => write!(
                f,
                "delivery set for processor {recipient} has {actual} senders, minimum is {minimum}"
            ),
            WindowError::UnknownProcessor { id } => {
                write!(f, "window references unknown processor {id}")
            }
        }
    }
}

impl Error for WindowError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> SystemConfig {
        SystemConfig::new(7, 1).unwrap()
    }

    fn ids(indices: &[usize]) -> Vec<ProcessorId> {
        indices.iter().copied().map(ProcessorId::new).collect()
    }

    #[test]
    fn full_delivery_window_is_valid() {
        let w = Window::full_delivery(&cfg());
        assert!(w.validate(&cfg()).is_ok());
        assert_eq!(w.arity(), 7);
        assert!(w.resets().is_empty());
        assert_eq!(w.delivery_set(3).len(), 7);
    }

    #[test]
    fn uniform_window_applies_same_set_everywhere() {
        let senders = ids(&[1, 2, 3, 4, 5, 6]);
        let w = Window::uniform(&cfg(), ids(&[0]), senders.clone());
        assert!(w.validate(&cfg()).is_ok());
        for i in 0..7 {
            assert_eq!(w.delivery_set(i), senders.as_slice());
        }
        assert_eq!(w.resets(), ids(&[0]).as_slice());
    }

    #[test]
    fn too_many_resets_rejected() {
        let w = Window::uniform(&cfg(), ids(&[0, 1]), ids(&[0, 1, 2, 3, 4, 5, 6]));
        assert_eq!(
            w.validate(&cfg()),
            Err(WindowError::TooManyResets {
                budget: 1,
                actual: 2
            })
        );
    }

    #[test]
    fn small_delivery_set_rejected() {
        let mut deliveries = vec![ids(&[0, 1, 2, 3, 4, 5, 6]); 7];
        deliveries[2] = ids(&[0, 1, 2, 3, 4]); // 5 < n - t = 6
        let w = Window::new(vec![], deliveries);
        assert_eq!(
            w.validate(&cfg()),
            Err(WindowError::DeliverySetTooSmall {
                recipient: 2,
                minimum: 6,
                actual: 5
            })
        );
    }

    #[test]
    fn wrong_arity_rejected() {
        let w = Window::new(vec![], vec![ids(&[0, 1, 2, 3, 4, 5]); 6]);
        assert_eq!(
            w.validate(&cfg()),
            Err(WindowError::WrongArity {
                expected: 7,
                actual: 6
            })
        );
    }

    #[test]
    fn duplicate_reset_and_sender_rejected() {
        let w = Window::uniform(&cfg(), ids(&[3, 3]), ids(&[0, 1, 2, 3, 4, 5, 6]));
        // Too many resets is reported first only if count exceeds budget; here budget is 1 so
        // the count check fires. Use a larger budget config to isolate the duplicate check.
        let cfg2 = SystemConfig::new(7, 2).unwrap();
        assert_eq!(w.validate(&cfg2), Err(WindowError::DuplicateReset));

        let mut deliveries = vec![ids(&[0, 1, 2, 3, 4, 5, 6]); 7];
        deliveries[0] = ids(&[1, 1, 2, 3, 4, 5, 6]);
        let w = Window::new(vec![], deliveries);
        assert_eq!(
            w.validate(&cfg()),
            Err(WindowError::DuplicateSender { recipient: 0 })
        );
    }

    #[test]
    fn unknown_processor_rejected() {
        let w = Window::uniform(&cfg(), ids(&[9]), ids(&[0, 1, 2, 3, 4, 5, 6]));
        assert!(matches!(
            w.validate(&cfg()),
            Err(WindowError::UnknownProcessor { .. })
        ));
        let w = Window::uniform(&cfg(), vec![], ids(&[1, 2, 3, 4, 5, 9]));
        assert!(matches!(
            w.validate(&cfg()),
            Err(WindowError::UnknownProcessor { .. })
        ));
    }

    #[test]
    fn error_messages_are_informative() {
        let err = WindowError::DeliverySetTooSmall {
            recipient: 4,
            minimum: 6,
            actual: 2,
        };
        let msg = err.to_string();
        assert!(msg.contains('4') && msg.contains('6') && msg.contains('2'));
    }
}

//! A threaded message-passing runtime for the agreement protocols.
//!
//! `agreement-sim` drives the protocol state machines under a fully
//! adversary-controlled scheduler; this crate runs the very same state
//! machines as a real concurrent system — one OS thread per processor, one
//! mpsc channel per processor as its incoming buffer — to demonstrate
//! that the protocols are ordinary message-passing programs and to provide a
//! wall-clock benchmark target (`net_cluster` in `agreement-bench`).
//!
//! See [`Cluster`] for the entry point and [`ClusterOutcome`] for the result.
//! The [`transport`] module is the lower layer: bounded blocking channels,
//! length-prefixed framing, and coalescing socket connections, reused by the
//! multi-process campaign orchestration in `agreement-core`.
//!
//! # Example
//!
//! ```
//! use agreement_model::{Bit, InputAssignment, SystemConfig};
//! use agreement_net::Cluster;
//! use agreement_protocols::BenOrBuilder;
//!
//! let cfg = SystemConfig::new(4, 1)?;
//! let inputs = InputAssignment::unanimous(4, Bit::One);
//! let outcome = Cluster::new(cfg, inputs.clone(), 42).run(&BenOrBuilder::new());
//! assert!(outcome.agreement_holds());
//! assert!(outcome.validity_holds(&inputs));
//! # Ok::<(), agreement_model::ConfigError>(())
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod cluster;
pub mod fault;
pub mod transport;

pub use cluster::{Cluster, ClusterOutcome};

//! A real multi-threaded message-passing cluster.
//!
//! The simulator in `agreement-sim` gives the adversary total control; this
//! module demonstrates that the same protocol state machines are ordinary
//! message-passing programs. Each processor runs on its own OS thread and
//! communicates over `std::sync::mpsc` channels (one unbounded channel per
//! processor, playing the role of its incoming message buffer). Scheduling is
//! whatever the operating system does — effectively a benign asynchronous
//! adversary — optionally degraded by silencing a set of processors
//! (sender-side message drops), which models crashed processors.

use std::sync::mpsc::{channel, RecvTimeoutError, Sender};
use std::thread;
use std::time::{Duration, Instant};

use crate::transport::{self, RecvError};

use agreement_model::{
    Bit, Context, InputAssignment, Payload, ProcessorId, ProcessorRng, ProtocolBuilder,
    SystemConfig,
};

/// A message on a node's incoming channel.
#[derive(Debug)]
enum NodeMsg {
    /// A protocol message from another node.
    Protocol(ProcessorId, Payload),
    /// Ask the node thread to exit.
    Shutdown,
}

/// The [`Context`] implementation used by cluster nodes: sends go directly
/// into the recipients' channels.
struct NodeContext {
    id: ProcessorId,
    cfg: SystemConfig,
    input: Bit,
    rng: ProcessorRng,
    peers: Vec<Sender<NodeMsg>>,
    decision: Option<Bit>,
    silenced: bool,
    conflicting: bool,
}

impl Context for NodeContext {
    fn id(&self) -> ProcessorId {
        self.id
    }

    fn config(&self) -> SystemConfig {
        self.cfg
    }

    fn input(&self) -> Bit {
        self.input
    }

    fn send(&mut self, to: ProcessorId, payload: Payload) {
        if self.silenced {
            return;
        }
        // A send to a node that has already shut down is simply dropped, like
        // a message to a crashed processor.
        let _ = self.peers[to.index()].send(NodeMsg::Protocol(self.id, payload));
    }

    fn random_bit(&mut self) -> Bit {
        self.rng.bit()
    }

    fn random_range(&mut self, bound: u64) -> u64 {
        self.rng.range(bound)
    }

    fn random_ticket(&mut self) -> u64 {
        self.rng.ticket()
    }

    fn decide(&mut self, value: Bit) {
        match self.decision {
            None => self.decision = Some(value),
            Some(existing) if existing != value => self.conflicting = true,
            Some(_) => {}
        }
    }

    fn decision(&self) -> Option<Bit> {
        self.decision
    }
}

/// What a cluster run produced.
#[derive(Debug, Clone)]
pub struct ClusterOutcome {
    /// Final decision of every processor (`None` if it never decided before
    /// the deadline).
    pub decisions: Vec<Option<Bit>>,
    /// Which processors were silenced (modelled crashes).
    pub silenced: Vec<bool>,
    /// Wall-clock duration until every live processor decided (or the deadline).
    pub elapsed: Duration,
    /// `true` if the deadline expired before every live processor decided.
    pub timed_out: bool,
    /// `true` if any node attempted to overwrite its decision with a
    /// conflicting value (a correctness violation).
    pub conflicting_write: bool,
}

impl ClusterOutcome {
    /// Agreement: no two decided values differ.
    pub fn agreement_holds(&self) -> bool {
        let mut seen = None;
        for d in self.decisions.iter().flatten() {
            match seen {
                None => seen = Some(*d),
                Some(v) if v != *d => return false,
                Some(_) => {}
            }
        }
        true
    }

    /// Validity: every decided value is some processor's input.
    pub fn validity_holds(&self, inputs: &InputAssignment) -> bool {
        self.decisions
            .iter()
            .flatten()
            .all(|d| inputs.iter().any(|i| i == *d))
    }

    /// Every non-silenced processor decided before the deadline.
    pub fn all_live_decided(&self) -> bool {
        self.decisions
            .iter()
            .zip(&self.silenced)
            .all(|(d, silenced)| *silenced || d.is_some())
    }
}

/// Configuration of a threaded cluster run.
#[derive(Debug, Clone)]
pub struct Cluster {
    cfg: SystemConfig,
    inputs: InputAssignment,
    master_seed: u64,
    silenced: Vec<ProcessorId>,
    deadline: Duration,
}

impl Cluster {
    /// Creates a cluster description.
    ///
    /// # Panics
    ///
    /// Panics if `inputs` does not cover exactly `cfg.n()` processors.
    pub fn new(cfg: SystemConfig, inputs: InputAssignment, master_seed: u64) -> Self {
        assert_eq!(
            inputs.len(),
            cfg.n(),
            "input assignment must cover every processor"
        );
        Cluster {
            cfg,
            inputs,
            master_seed,
            silenced: Vec::new(),
            deadline: Duration::from_secs(10),
        }
    }

    /// Silences the given processors: they run but never send anything,
    /// modelling crashed processors (at most `t` should be silenced for the
    /// protocols' guarantees to apply).
    pub fn silence(mut self, victims: Vec<ProcessorId>) -> Self {
        self.silenced = victims;
        self
    }

    /// Overrides the wall-clock deadline (default: 10 seconds).
    pub fn deadline(mut self, deadline: Duration) -> Self {
        self.deadline = deadline;
        self
    }

    /// Runs `builder`'s protocol on one thread per processor and reports the
    /// outcome once every live processor has decided or the deadline expires.
    pub fn run(&self, builder: &dyn ProtocolBuilder) -> ClusterOutcome {
        let n = self.cfg.n();
        let started = Instant::now();

        let mut senders: Vec<Sender<NodeMsg>> = Vec::with_capacity(n);
        let mut receivers = Vec::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = channel();
            senders.push(tx);
            receivers.push(rx);
        }
        // Decision reports flow through the transport's bounded blocking
        // channel: each node reports at most once, so capacity n means a
        // report never blocks, and `recv_deadline` gives the collector a real
        // blocking wait instead of a poll loop.
        let (decision_tx, decision_rx) = transport::bounded::<(ProcessorId, Bit, bool)>(n);

        let mut handles = Vec::with_capacity(n);
        for (id, rx) in ProcessorId::all(n).zip(receivers) {
            let peers = senders.clone();
            let decision_tx = decision_tx.clone();
            let silenced = self.silenced.contains(&id);
            let mut protocol = builder.build(id, self.inputs.bit(id.index()), &self.cfg);
            let mut ctx = NodeContext {
                id,
                cfg: self.cfg,
                input: self.inputs.bit(id.index()),
                rng: ProcessorRng::for_processor(self.master_seed, id),
                peers,
                decision: None,
                silenced,
                conflicting: false,
            };
            handles.push(thread::spawn(move || {
                protocol.on_start(&mut ctx);
                let mut reported = false;
                loop {
                    if let (Some(decision), false) = (ctx.decision, reported) {
                        reported = true;
                        let _ = decision_tx.send((id, decision, ctx.conflicting));
                    }
                    match rx.recv_timeout(Duration::from_millis(50)) {
                        Ok(NodeMsg::Protocol(from, payload)) => {
                            protocol.on_message(from, &payload, &mut ctx);
                        }
                        Ok(NodeMsg::Shutdown) => break,
                        Err(RecvTimeoutError::Timeout) => {}
                        Err(RecvTimeoutError::Disconnected) => break,
                    }
                }
            }));
        }
        drop(decision_tx);

        // Collect decisions until every live processor reported or the
        // deadline expires. `recv_deadline` blocks until a report arrives —
        // no polling, no shared decision table: only this thread writes it.
        // Liveness is a bool-per-processor mask so the per-report membership
        // test is O(1), keeping collection linear in cluster size.
        let live: Vec<bool> = ProcessorId::all(n)
            .map(|id| !self.silenced.contains(&id))
            .collect();
        let live_total = live.iter().filter(|&&l| l).count();
        let deadline_at = started + self.deadline;
        let mut decisions: Vec<Option<Bit>> = vec![None; n];
        let mut decided_live = 0usize;
        let mut conflicting_write = false;
        let mut timed_out = false;
        while decided_live < live_total {
            match decision_rx.recv_deadline(deadline_at) {
                Ok((id, value, conflict)) => {
                    if decisions[id.index()].is_none() && live[id.index()] {
                        decided_live += 1;
                    }
                    decisions[id.index()] = Some(value);
                    conflicting_write |= conflict;
                }
                Err(RecvError::Timeout) => {
                    timed_out = true;
                    break;
                }
                Err(RecvError::Disconnected) => break,
            }
        }

        // Shut the node threads down and wait for them.
        for tx in &senders {
            let _ = tx.send(NodeMsg::Shutdown);
        }
        for handle in handles {
            let _ = handle.join();
        }
        // Drain any decisions that raced with the shutdown.
        while let Ok((id, value, conflict)) = decision_rx.try_recv() {
            decisions[id.index()] = Some(value);
            conflicting_write |= conflict;
        }
        ClusterOutcome {
            decisions,
            silenced: live.iter().map(|&l| !l).collect(),
            elapsed: started.elapsed(),
            timed_out,
            conflicting_write,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agreement_protocols::{BenOrBuilder, CommitteeBuilder, ResetTolerantBuilder};

    #[test]
    fn ben_or_cluster_decides_unanimous_input() {
        let cfg = SystemConfig::new(5, 1).unwrap();
        let inputs = InputAssignment::unanimous(5, Bit::One);
        let outcome = Cluster::new(cfg, inputs.clone(), 7).run(&BenOrBuilder::new());
        assert!(!outcome.timed_out, "cluster run timed out");
        assert!(outcome.all_live_decided());
        assert!(outcome.agreement_holds());
        assert!(outcome.validity_holds(&inputs));
        assert!(!outcome.conflicting_write);
    }

    #[test]
    fn ben_or_cluster_survives_silenced_minority() {
        let cfg = SystemConfig::new(5, 1).unwrap();
        let inputs = InputAssignment::unanimous(5, Bit::Zero);
        let outcome = Cluster::new(cfg, inputs.clone(), 9)
            .silence(vec![ProcessorId::new(4)])
            .run(&BenOrBuilder::new());
        assert!(outcome.all_live_decided());
        assert!(outcome.agreement_holds());
        assert!(outcome.validity_holds(&inputs));
        assert_eq!(outcome.silenced, vec![false, false, false, false, true]);
    }

    #[test]
    fn reset_tolerant_cluster_decides_split_input() {
        // Without an adversary balancing the views, the reset-tolerant
        // protocol decides quickly even on split inputs at this scale.
        let cfg = SystemConfig::with_sixth_resilience(7).unwrap();
        let builder = ResetTolerantBuilder::recommended(&cfg).unwrap();
        let inputs = InputAssignment::evenly_split(7);
        let outcome = Cluster::new(cfg, inputs.clone(), 11)
            .deadline(Duration::from_secs(30))
            .run(&builder);
        assert!(outcome.all_live_decided());
        assert!(outcome.agreement_holds());
        assert!(outcome.validity_holds(&inputs));
    }

    #[test]
    fn committee_cluster_decides_quickly() {
        let cfg = SystemConfig::new(9, 2).unwrap();
        let builder = CommitteeBuilder::random(&cfg, 3, 5);
        let inputs = InputAssignment::unanimous(9, Bit::One);
        let outcome = Cluster::new(cfg, inputs.clone(), 13).run(&builder);
        assert!(outcome.all_live_decided());
        assert!(outcome.agreement_holds());
        assert_eq!(
            outcome
                .decisions
                .iter()
                .flatten()
                .copied()
                .collect::<Vec<_>>(),
            vec![Bit::One; 9]
        );
    }

    #[test]
    fn cluster_times_out_when_quorum_is_unreachable() {
        // Silencing 3 of 5 processors leaves only 2 < n - t = 4 senders, so
        // Ben-Or can never assemble a quorum and the run must time out.
        let cfg = SystemConfig::new(5, 1).unwrap();
        let inputs = InputAssignment::unanimous(5, Bit::One);
        let outcome = Cluster::new(cfg, inputs, 3)
            .silence(vec![
                ProcessorId::new(0),
                ProcessorId::new(1),
                ProcessorId::new(2),
            ])
            .deadline(Duration::from_millis(500))
            .run(&BenOrBuilder::new());
        assert!(outcome.timed_out);
        assert!(!outcome.all_live_decided());
    }
}

//! Deterministic fault injection for the framed transport.
//!
//! The paper's whole method is adversarial scheduling — protocols must
//! survive a powerful adversary controlling message delivery. This module
//! points the same stance at our *own* wire stack: a seeded [`FaultPlan`]
//! describes per-frame fault probabilities, and a [`FaultInjector`] derived
//! from it decides, at every frame boundary, whether that frame is
//! delivered, dropped, duplicated, bit-flipped, truncated (then the socket
//! closed), delayed, or hung on.
//!
//! Determinism is the point. The action for frame `k` of a connection is a
//! pure function of `(plan seed, direction label, k)` — each frame's
//! decision draws from its own [`ProcessorRng`] substream, so the schedule
//! of faults does not depend on how much randomness earlier frames consumed
//! or on what the frames contain. Two runs with the same plan produce the
//! same injector decisions, which is what makes chaos runs replayable and
//! their recovery logs comparable.
//!
//! The production path stays zero-cost: a connection without a plan carries
//! `None` and the writer thread's only overhead is one branch per frame.
//! Workers opt in through the `AGREEMENT_FAULTS` environment variable (see
//! [`FaultPlan::from_env`]); tests and the orchestrator pass plans
//! explicitly.

use std::fmt;

use agreement_model::{derive_seed, ProcessorRng};

/// Environment variable carrying a [`FaultPlan`] spec string to processes
/// that should injure their own outgoing frames (workers, mostly).
pub const FAULT_ENV: &str = "AGREEMENT_FAULTS";

/// A seeded description of how often each fault fires, consulted at frame
/// boundaries. Probabilities are per frame and independent; `grace` initial
/// frames pass untouched so handshakes (the worker hello) survive even
/// aggressive plans.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Master seed; every injector substream derives from it.
    pub seed: u64,
    /// Number of initial frames always delivered faithfully (default 1 —
    /// enough for a hello).
    pub grace: u64,
    /// Probability a frame is silently dropped.
    pub drop: f64,
    /// Probability a frame is written twice.
    pub duplicate: f64,
    /// Probability one bit of the frame (payload or CRC trailer) is flipped.
    pub bit_flip: f64,
    /// Probability the frame is cut short and the socket closed — after
    /// this the connection writes nothing more.
    pub truncate: f64,
    /// Probability the writer goes permanently silent (frames keep being
    /// accepted and discarded so senders never block).
    pub hang: f64,
    /// Probability the frame is delayed before writing.
    pub delay: f64,
    /// Upper bound, in milliseconds, on an injected delay.
    pub delay_ms: u64,
}

impl FaultPlan {
    /// A plan with the given seed and every fault probability at zero.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            grace: 1,
            drop: 0.0,
            duplicate: 0.0,
            bit_flip: 0.0,
            truncate: 0.0,
            hang: 0.0,
            delay: 0.0,
            delay_ms: 20,
        }
    }

    /// The standard chaos mix: every fault class enabled at rates gentle
    /// enough that a bounded respawn budget outlives them, aggressive
    /// enough that every recovery path fires on a full-registry run.
    #[must_use]
    pub fn gentle(seed: u64) -> Self {
        FaultPlan {
            seed,
            grace: 1,
            drop: 0.01,
            duplicate: 0.03,
            bit_flip: 0.005,
            truncate: 0.003,
            hang: 0.002,
            delay: 0.05,
            delay_ms: 15,
        }
    }

    /// The same plan under a different seed — how the orchestrator gives
    /// each spawned worker its own (still deterministic) fault substream.
    #[must_use]
    pub fn reseeded(&self, seed: u64) -> Self {
        FaultPlan { seed, ..*self }
    }

    /// Parses a spec string of comma-separated `key=value` fields:
    /// `seed=7,grace=1,drop=0.01,dup=0.03,flip=0.005,trunc=0.003,hang=0.002,delay=0.05:15`.
    /// Every field is optional except `seed`; `delay` takes an optional
    /// `:MAX_MS` suffix.
    ///
    /// # Errors
    ///
    /// Describes the offending field on malformed input.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut plan = FaultPlan::new(0);
        let mut saw_seed = false;
        for field in spec.split(',') {
            let field = field.trim();
            if field.is_empty() {
                continue;
            }
            let (key, value) = field
                .split_once('=')
                .ok_or_else(|| format!("fault field '{field}' is not key=value"))?;
            let prob = |what: &str| -> Result<f64, String> {
                let p: f64 = value
                    .parse()
                    .map_err(|_| format!("fault {what} '{value}' is not a number"))?;
                if !(0.0..=1.0).contains(&p) {
                    return Err(format!("fault {what} {p} is outside 0..=1"));
                }
                Ok(p)
            };
            match key {
                "seed" => {
                    plan.seed = value
                        .parse()
                        .map_err(|_| format!("fault seed '{value}' is not an integer"))?;
                    saw_seed = true;
                }
                "grace" => {
                    plan.grace = value
                        .parse()
                        .map_err(|_| format!("fault grace '{value}' is not an integer"))?;
                }
                "drop" => plan.drop = prob("drop")?,
                "dup" => plan.duplicate = prob("dup")?,
                "flip" => plan.bit_flip = prob("flip")?,
                "trunc" => plan.truncate = prob("trunc")?,
                "hang" => plan.hang = prob("hang")?,
                "delay" => {
                    let (p, ms) = match value.split_once(':') {
                        Some((p, ms)) => (
                            p,
                            Some(ms.parse::<u64>().map_err(|_| {
                                format!("fault delay bound '{ms}' is not an integer")
                            })?),
                        ),
                        None => (value, None),
                    };
                    let p: f64 = p
                        .parse()
                        .map_err(|_| format!("fault delay '{p}' is not a number"))?;
                    if !(0.0..=1.0).contains(&p) {
                        return Err(format!("fault delay {p} is outside 0..=1"));
                    }
                    plan.delay = p;
                    if let Some(ms) = ms {
                        plan.delay_ms = ms;
                    }
                }
                other => return Err(format!("unknown fault field '{other}'")),
            }
        }
        if !saw_seed {
            return Err("fault plan must carry a seed (seed=N)".to_string());
        }
        Ok(plan)
    }

    /// Reads a plan from the [`FAULT_ENV`] environment variable.
    ///
    /// # Errors
    ///
    /// `Ok(None)` when the variable is unset or empty; a parse failure is a
    /// loud error, never a silently fault-free run.
    pub fn from_env() -> Result<Option<Self>, String> {
        match std::env::var(FAULT_ENV) {
            Ok(spec) if !spec.trim().is_empty() => FaultPlan::parse(&spec).map(Some),
            _ => Ok(None),
        }
    }

    /// Builds the injector for one direction of one connection. `direction`
    /// is a caller-chosen label (e.g. 0 for the outgoing side) so the two
    /// directions of a connection draw independent substreams.
    #[must_use]
    pub fn injector(&self, direction: u64) -> FaultInjector {
        FaultInjector {
            plan: self.clone(),
            stream: derive_seed(self.seed, 0xFA17 ^ direction),
            frame: 0,
            silenced: false,
        }
    }
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "seed={},grace={},drop={},dup={},flip={},trunc={},hang={},delay={}:{}",
            self.seed,
            self.grace,
            self.drop,
            self.duplicate,
            self.bit_flip,
            self.truncate,
            self.hang,
            self.delay,
            self.delay_ms
        )
    }
}

/// What the injector decided for one frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Write the frame faithfully.
    Deliver,
    /// Skip the frame entirely.
    Drop,
    /// Write the frame twice.
    Duplicate,
    /// Flip the given zero-based bit of the payload+CRC region.
    BitFlip {
        /// Bit offset into the frame body (payload bytes followed by the
        /// 4-byte CRC trailer), reduced modulo the body length at apply
        /// time.
        bit: u64,
    },
    /// Write only a prefix of the encoded frame, then close the socket.
    TruncateClose {
        /// Raw entropy for choosing the cut point, reduced at apply time.
        keep: u64,
    },
    /// Go silent: this frame and every later one is discarded.
    Hang,
    /// Sleep before writing the frame.
    Delay {
        /// Milliseconds to sleep (already bounded by the plan).
        ms: u64,
    },
}

/// Per-connection, per-direction fault decision stream. See the module docs
/// for the determinism contract.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    plan: FaultPlan,
    stream: u64,
    frame: u64,
    silenced: bool,
}

impl FaultInjector {
    /// Decides the fate of the next frame. Once a [`FaultAction::Hang`] or
    /// [`FaultAction::TruncateClose`] has been returned, every later call
    /// returns [`FaultAction::Hang`] — a closed or silent connection stays
    /// that way.
    pub fn next_action(&mut self) -> FaultAction {
        let frame = self.frame;
        self.frame += 1;
        if self.silenced {
            return FaultAction::Hang;
        }
        if frame < self.plan.grace {
            return FaultAction::Deliver;
        }
        // One private substream per frame index: the decision for frame k
        // never depends on other frames' draws.
        let mut rng = ProcessorRng::from_seed(derive_seed(self.stream, frame));
        // Fixed evaluation order keeps the schedule stable as plans evolve.
        if rng.chance(self.plan.truncate) {
            self.silenced = true;
            return FaultAction::TruncateClose { keep: rng.ticket() };
        }
        if rng.chance(self.plan.hang) {
            self.silenced = true;
            return FaultAction::Hang;
        }
        if rng.chance(self.plan.drop) {
            return FaultAction::Drop;
        }
        if rng.chance(self.plan.bit_flip) {
            return FaultAction::BitFlip { bit: rng.ticket() };
        }
        if rng.chance(self.plan.duplicate) {
            return FaultAction::Duplicate;
        }
        if rng.chance(self.plan.delay) && self.plan.delay_ms > 0 {
            return FaultAction::Delay {
                ms: rng.range(self.plan.delay_ms) + 1,
            };
        }
        FaultAction::Deliver
    }

    /// Whether the connection has been silenced by a hang or truncate-close.
    #[must_use]
    pub fn silenced(&self) -> bool {
        self.silenced
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_string_round_trips_through_parse() {
        let plan = FaultPlan::gentle(42);
        let reparsed = FaultPlan::parse(&plan.to_string()).unwrap();
        assert_eq!(plan, reparsed);
    }

    #[test]
    fn parse_rejects_bad_fields_loudly() {
        assert!(FaultPlan::parse("drop=0.1").is_err(), "seed is mandatory");
        assert!(FaultPlan::parse("seed=1,drop=1.5").is_err());
        assert!(FaultPlan::parse("seed=1,volume=11").is_err());
        assert!(FaultPlan::parse("seed=x").is_err());
        assert!(FaultPlan::parse("seed=1,delay=0.5:abc").is_err());
    }

    #[test]
    fn same_seed_reproduces_the_same_action_schedule() {
        let plan = FaultPlan::gentle(7);
        let mut a = plan.injector(0);
        let mut b = plan.injector(0);
        let schedule_a: Vec<FaultAction> = (0..4096).map(|_| a.next_action()).collect();
        let schedule_b: Vec<FaultAction> = (0..4096).map(|_| b.next_action()).collect();
        assert_eq!(schedule_a, schedule_b);
        // A different seed (and a different direction) must diverge.
        let mut c = plan.reseeded(8).injector(0);
        let schedule_c: Vec<FaultAction> = (0..4096).map(|_| c.next_action()).collect();
        assert_ne!(schedule_a, schedule_c);
        let mut d = plan.injector(1);
        let schedule_d: Vec<FaultAction> = (0..4096).map(|_| d.next_action()).collect();
        assert_ne!(schedule_a, schedule_d);
    }

    #[test]
    fn grace_frames_are_always_delivered_and_silence_is_sticky() {
        let mut plan = FaultPlan::new(3);
        plan.grace = 2;
        plan.hang = 1.0;
        let mut injector = plan.injector(0);
        assert_eq!(injector.next_action(), FaultAction::Deliver);
        assert_eq!(injector.next_action(), FaultAction::Deliver);
        assert_eq!(injector.next_action(), FaultAction::Hang);
        assert!(injector.silenced());
        assert_eq!(injector.next_action(), FaultAction::Hang);
    }

    #[test]
    fn a_zero_probability_plan_always_delivers() {
        let mut injector = FaultPlan::new(9).injector(0);
        for _ in 0..1000 {
            assert_eq!(injector.next_action(), FaultAction::Deliver);
        }
    }

    #[test]
    fn gentle_rates_fire_every_fault_class_eventually() {
        let mut injector = FaultPlan::gentle(11).injector(0);
        let mut saw_drop = false;
        let mut saw_dup = false;
        let mut saw_flip = false;
        let mut saw_delay = false;
        for _ in 0..10_000 {
            match injector.next_action() {
                FaultAction::Drop => saw_drop = true,
                FaultAction::Duplicate => saw_dup = true,
                FaultAction::BitFlip { .. } => saw_flip = true,
                FaultAction::Delay { ms } => {
                    assert!((1..=15).contains(&ms));
                    saw_delay = true;
                }
                FaultAction::Hang => break,
                _ => {}
            }
        }
        assert!(saw_drop && saw_dup && saw_flip && saw_delay);
    }

    #[test]
    fn env_hook_parses_or_is_absent() {
        // Not set in the test environment: absent, not an error.
        assert_eq!(FaultPlan::from_env(), Ok(None));
    }
}

//! A grown-up message transport: bounded blocking channels, length-prefixed
//! frames, and socket connections with coalescing writers.
//!
//! The original `net` crate was a thread-per-node mpsc toy; this module is
//! the channel the distributed pieces of the workspace actually ship bytes
//! through. Three layers, each usable on its own:
//!
//! * [`bounded`] — a capacity-limited blocking MPSC queue. Sends **block**
//!   when the queue is full (backpressure, not unbounded memory), receives
//!   block until an item or a deadline arrives ([`BoundedReceiver::recv_deadline`]
//!   is the primitive `cluster` uses instead of its old 20 ms poll loop), and
//!   [`BoundedReceiver::recv_many`] drains every queued item in one wakeup —
//!   the coalescing primitive the connection writer batches frames with.
//! * [`write_frame`]/[`read_frame`] — length-prefixed (u32 little-endian)
//!   framing with a CRC32 trailer over any `Write`/`Read`, so a TCP stream
//!   carries discrete, integrity-checked messages instead of a byte soup. A
//!   clean EOF *between* frames is distinguished from a truncated frame, and
//!   a damaged frame surfaces as a detected [`FrameCorrupt`] condition
//!   rather than parsing as garbage.
//! * [`Connection`]/[`Listener`] — a TCP connection with a writer thread
//!   (drains a bounded outbox with [`BoundedReceiver::recv_many`], writes the
//!   whole batch, flushes **once** — many small sends become one syscall) and
//!   a reader thread (feeds a bounded inbox; a slow consumer propagates
//!   backpressure to the peer through TCP flow control). A connection built
//!   with [`Connection::with_faults`] consults a seeded
//!   [`FaultInjector`](crate::fault::FaultInjector) at every outgoing frame
//!   boundary; without one the fault hook is a single branch per frame.
//!
//! The orchestration layer in `agreement-core` speaks JSON inside these
//! frames; this module neither knows nor cares — payloads are opaque bytes.

use std::collections::VecDeque;
use std::error::Error;
use std::fmt;
use std::io::{self, BufWriter, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use agreement_analysis::crc32;

use crate::fault::{FaultAction, FaultInjector, FaultPlan};

/// Largest accepted frame payload (64 MiB): a corrupted length prefix must
/// not become an attempted multi-gigabyte allocation.
pub const MAX_FRAME_LEN: usize = 64 << 20;

/// The CRC32 trailer appended after every frame payload.
const FRAME_TRAILER: usize = 4;

/// A frame whose CRC32 trailer does not match its payload: the bytes were
/// damaged in flight (or deliberately, by the fault injector). Carried as
/// the inner error of an [`io::ErrorKind::InvalidData`] error from
/// [`read_frame`]; test with [`is_frame_corrupt`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameCorrupt {
    /// The checksum the sender wrote.
    pub expected: u32,
    /// The checksum of the payload as received.
    pub actual: u32,
}

impl fmt::Display for FrameCorrupt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "frame CRC mismatch: trailer {:#010x}, payload checksums to {:#010x}",
            self.expected, self.actual
        )
    }
}

impl Error for FrameCorrupt {}

/// Whether an I/O error from [`read_frame`] is a detected CRC mismatch (as
/// opposed to a truncation, an oversized length, or a socket failure).
#[must_use]
pub fn is_frame_corrupt(err: &io::Error) -> bool {
    err.get_ref()
        .is_some_and(|inner| inner.is::<FrameCorrupt>())
}

/// Why a receive returned no item.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvError {
    /// The deadline expired with the queue still empty.
    Timeout,
    /// Every sender is gone and the queue is drained.
    Disconnected,
}

/// Why a send failed: the receiver is gone (the item is handed back).
#[derive(Debug)]
pub struct SendError<T>(pub T);

struct ChannelState<T> {
    items: VecDeque<T>,
    senders: usize,
    receiver_alive: bool,
}

struct Channel<T> {
    state: Mutex<ChannelState<T>>,
    capacity: usize,
    not_empty: Condvar,
    not_full: Condvar,
}

/// The sending half of a [`bounded`] channel. Cloneable; dropping the last
/// clone disconnects the receiver.
pub struct BoundedSender<T> {
    channel: Arc<Channel<T>>,
}

/// The receiving half of a [`bounded`] channel (single consumer).
pub struct BoundedReceiver<T> {
    channel: Arc<Channel<T>>,
}

/// Creates a bounded blocking MPSC channel with room for `capacity` items.
///
/// # Panics
///
/// Panics if `capacity` is zero (a zero-capacity rendezvous channel is not
/// needed anywhere in this workspace and complicates the wakeup logic).
pub fn bounded<T>(capacity: usize) -> (BoundedSender<T>, BoundedReceiver<T>) {
    assert!(capacity > 0, "bounded channel capacity must be positive");
    let channel = Arc::new(Channel {
        state: Mutex::new(ChannelState {
            items: VecDeque::with_capacity(capacity),
            senders: 1,
            receiver_alive: true,
        }),
        capacity,
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
    });
    (
        BoundedSender {
            channel: Arc::clone(&channel),
        },
        BoundedReceiver { channel },
    )
}

impl<T> BoundedSender<T> {
    /// Enqueues `item`, **blocking while the queue is full** — the
    /// backpressure that keeps a fast producer from ballooning memory.
    ///
    /// # Errors
    ///
    /// Returns the item when the receiver is gone.
    pub fn send(&self, item: T) -> Result<(), SendError<T>> {
        let mut state = self.channel.state.lock().expect("channel poisoned");
        loop {
            if !state.receiver_alive {
                return Err(SendError(item));
            }
            if state.items.len() < self.channel.capacity {
                state.items.push_back(item);
                drop(state);
                self.channel.not_empty.notify_one();
                return Ok(());
            }
            state = self.channel.not_full.wait(state).expect("channel poisoned");
        }
    }

    /// Enqueues `item` if there is room, without blocking.
    ///
    /// # Errors
    ///
    /// Returns the item when the queue is full or the receiver is gone.
    pub fn try_send(&self, item: T) -> Result<(), SendError<T>> {
        let mut state = self.channel.state.lock().expect("channel poisoned");
        if !state.receiver_alive || state.items.len() >= self.channel.capacity {
            return Err(SendError(item));
        }
        state.items.push_back(item);
        drop(state);
        self.channel.not_empty.notify_one();
        Ok(())
    }
}

impl<T> Clone for BoundedSender<T> {
    fn clone(&self) -> Self {
        self.channel.state.lock().expect("channel poisoned").senders += 1;
        BoundedSender {
            channel: Arc::clone(&self.channel),
        }
    }
}

impl<T> Drop for BoundedSender<T> {
    fn drop(&mut self) {
        let mut state = self.channel.state.lock().expect("channel poisoned");
        state.senders -= 1;
        let last = state.senders == 0;
        drop(state);
        if last {
            // Wake a receiver blocked on an empty queue so it observes the
            // disconnect instead of sleeping forever.
            self.channel.not_empty.notify_all();
        }
    }
}

impl<T> BoundedReceiver<T> {
    /// Dequeues the next item, blocking until one arrives.
    ///
    /// # Errors
    ///
    /// [`RecvError::Disconnected`] when every sender is gone and the queue is
    /// drained.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut state = self.channel.state.lock().expect("channel poisoned");
        loop {
            if let Some(item) = state.items.pop_front() {
                drop(state);
                self.channel.not_full.notify_one();
                return Ok(item);
            }
            if state.senders == 0 {
                return Err(RecvError::Disconnected);
            }
            state = self
                .channel
                .not_empty
                .wait(state)
                .expect("channel poisoned");
        }
    }

    /// Dequeues the next item, blocking until `deadline` at the latest — the
    /// bounded blocking receive that replaces hand-rolled sleep/poll loops.
    ///
    /// # Errors
    ///
    /// [`RecvError::Timeout`] when the deadline passes with the queue empty,
    /// [`RecvError::Disconnected`] when every sender is gone.
    pub fn recv_deadline(&self, deadline: Instant) -> Result<T, RecvError> {
        let mut state = self.channel.state.lock().expect("channel poisoned");
        loop {
            if let Some(item) = state.items.pop_front() {
                drop(state);
                self.channel.not_full.notify_one();
                return Ok(item);
            }
            if state.senders == 0 {
                return Err(RecvError::Disconnected);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RecvError::Timeout);
            }
            let (guard, _timeout) = self
                .channel
                .not_empty
                .wait_timeout(state, deadline - now)
                .expect("channel poisoned");
            state = guard;
        }
    }

    /// Dequeues the next item, waiting at most `timeout`.
    ///
    /// # Errors
    ///
    /// Same contract as [`BoundedReceiver::recv_deadline`].
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvError> {
        self.recv_deadline(Instant::now() + timeout)
    }

    /// Blocks for at least one item, then moves **every queued item** into
    /// `batch` in one wakeup and returns how many arrived. This is the
    /// coalescing primitive: a writer thread draining its outbox with
    /// `recv_many` turns a burst of small sends into one buffered write.
    ///
    /// # Errors
    ///
    /// [`RecvError::Disconnected`] when every sender is gone and nothing is
    /// queued.
    pub fn recv_many(&self, batch: &mut Vec<T>) -> Result<usize, RecvError> {
        let mut state = self.channel.state.lock().expect("channel poisoned");
        loop {
            if !state.items.is_empty() {
                let count = state.items.len();
                batch.extend(state.items.drain(..));
                drop(state);
                // Every waiting sender can make progress now.
                self.channel.not_full.notify_all();
                return Ok(count);
            }
            if state.senders == 0 {
                return Err(RecvError::Disconnected);
            }
            state = self
                .channel
                .not_empty
                .wait(state)
                .expect("channel poisoned");
        }
    }

    /// Blocks for at least one item until `deadline`, then moves **every
    /// queued item** into `batch` in one wakeup and returns how many arrived
    /// — [`BoundedReceiver::recv_many`] with the bounded-wait contract of
    /// [`BoundedReceiver::recv_deadline`]. A dispatch loop draining its inbox
    /// with this turns a burst of frames into one pass over the batch.
    ///
    /// # Errors
    ///
    /// [`RecvError::Timeout`] when the deadline passes with the queue empty,
    /// [`RecvError::Disconnected`] when every sender is gone and nothing is
    /// queued.
    pub fn recv_many_deadline(
        &self,
        batch: &mut Vec<T>,
        deadline: Instant,
    ) -> Result<usize, RecvError> {
        let mut state = self.channel.state.lock().expect("channel poisoned");
        loop {
            if !state.items.is_empty() {
                let count = state.items.len();
                batch.extend(state.items.drain(..));
                drop(state);
                // Every waiting sender can make progress now.
                self.channel.not_full.notify_all();
                return Ok(count);
            }
            if state.senders == 0 {
                return Err(RecvError::Disconnected);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RecvError::Timeout);
            }
            let (guard, _timeout) = self
                .channel
                .not_empty
                .wait_timeout(state, deadline - now)
                .expect("channel poisoned");
            state = guard;
        }
    }

    /// Dequeues an item only if one is already queued.
    ///
    /// # Errors
    ///
    /// [`RecvError::Timeout`] when the queue is momentarily empty,
    /// [`RecvError::Disconnected`] when every sender is gone.
    pub fn try_recv(&self) -> Result<T, RecvError> {
        let mut state = self.channel.state.lock().expect("channel poisoned");
        match state.items.pop_front() {
            Some(item) => {
                drop(state);
                self.channel.not_full.notify_one();
                Ok(item)
            }
            None if state.senders == 0 => Err(RecvError::Disconnected),
            None => Err(RecvError::Timeout),
        }
    }
}

impl<T> Drop for BoundedReceiver<T> {
    fn drop(&mut self) {
        let mut state = self.channel.state.lock().expect("channel poisoned");
        state.receiver_alive = false;
        state.items.clear();
        drop(state);
        // Senders blocked on a full queue must observe the disconnect.
        self.channel.not_full.notify_all();
    }
}

/// Writes one length-prefixed frame: u32 little-endian payload length, the
/// payload, then a u32 little-endian CRC32 of the payload. The caller
/// decides when to flush — batching frames before one flush is exactly the
/// coalescing the connection writer performs.
///
/// # Errors
///
/// Propagates I/O errors; rejects payloads over [`MAX_FRAME_LEN`].
pub fn write_frame(writer: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    if payload.len() > MAX_FRAME_LEN {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("frame of {} bytes exceeds MAX_FRAME_LEN", payload.len()),
        ));
    }
    writer.write_all(&(payload.len() as u32).to_le_bytes())?;
    writer.write_all(payload)?;
    writer.write_all(&crc32(payload).to_le_bytes())
}

/// Encodes one frame — length prefix, payload, CRC trailer — into a byte
/// vector, exactly as [`write_frame`] would emit it. This is the form the
/// fault injector mutates before putting bytes on the wire.
///
/// # Panics
///
/// Panics when the payload exceeds [`MAX_FRAME_LEN`] (callers frame their
/// own messages; an oversized one is a programming error here).
#[must_use]
pub fn encode_frame(payload: &[u8]) -> Vec<u8> {
    assert!(
        payload.len() <= MAX_FRAME_LEN,
        "frame exceeds MAX_FRAME_LEN"
    );
    let mut bytes = Vec::with_capacity(payload.len() + 4 + FRAME_TRAILER);
    bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    bytes.extend_from_slice(payload);
    bytes.extend_from_slice(&crc32(payload).to_le_bytes());
    bytes
}

/// Reads one length-prefixed, CRC-trailed frame. Returns `Ok(None)` on a
/// clean EOF *at a frame boundary* (the peer closed after a complete frame);
/// an EOF inside a frame is an `UnexpectedEof` error — a truncated frame is
/// corruption, not a shutdown.
///
/// # Errors
///
/// Propagates I/O errors; rejects frames whose declared length exceeds
/// [`MAX_FRAME_LEN`]; a payload that does not checksum to its trailer is an
/// [`io::ErrorKind::InvalidData`] error wrapping [`FrameCorrupt`] (test
/// with [`is_frame_corrupt`]) — damaged bytes are *detected*, never handed
/// to the payload parser.
pub fn read_frame(reader: &mut impl Read) -> io::Result<Option<Vec<u8>>> {
    let mut len_bytes = [0u8; 4];
    let mut filled = 0;
    while filled < len_bytes.len() {
        match reader.read(&mut len_bytes[filled..])? {
            0 if filled == 0 => return Ok(None),
            0 => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "EOF inside a frame length prefix",
                ))
            }
            n => filled += n,
        }
    }
    let len = u32::from_le_bytes(len_bytes) as usize;
    if len > MAX_FRAME_LEN {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("declared frame length {len} exceeds MAX_FRAME_LEN"),
        ));
    }
    let mut payload = vec![0u8; len];
    reader.read_exact(&mut payload).map_err(|err| {
        if err.kind() == io::ErrorKind::UnexpectedEof {
            io::Error::new(io::ErrorKind::UnexpectedEof, "EOF inside a frame payload")
        } else {
            err
        }
    })?;
    let mut trailer = [0u8; FRAME_TRAILER];
    reader.read_exact(&mut trailer).map_err(|err| {
        if err.kind() == io::ErrorKind::UnexpectedEof {
            io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "EOF inside a frame CRC trailer",
            )
        } else {
            err
        }
    })?;
    let expected = u32::from_le_bytes(trailer);
    let actual = crc32(&payload);
    if expected != actual {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            FrameCorrupt { expected, actual },
        ));
    }
    Ok(Some(payload))
}

/// How many frames a connection queues on each side before backpressure.
const CONNECTION_QUEUE: usize = 1024;

/// How long [`Connection::finish`] (and drop) lets the writer thread drain
/// the outbox before forcing the socket shut. A peer that stopped reading
/// can wedge an in-flight `write_all` forever; a close must not inherit
/// that hang.
const DRAIN_DEADLINE: Duration = Duration::from_secs(10);

/// A framed TCP connection with batched, backpressured queues on both sides.
///
/// Sends enqueue into a bounded outbox drained by a writer thread that
/// coalesces every queued frame into one buffered write + flush; receives
/// dequeue from a bounded inbox fed by a reader thread (when the inbox is
/// full the reader stops reading, which pushes back on the peer through TCP
/// flow control). Dropping the connection closes the socket and joins both
/// threads.
pub struct Connection {
    outbox: Option<BoundedSender<Vec<u8>>>,
    inbox: BoundedReceiver<Vec<u8>>,
    stream: TcpStream,
    peer: SocketAddr,
    writer: Option<JoinHandle<()>>,
    reader: Option<JoinHandle<()>>,
    read_fault: Arc<Mutex<Option<String>>>,
}

/// Applies one fault decision to one outgoing frame. Returns `false` when
/// the write side is finished (truncate-then-close fired or I/O failed).
fn write_frame_with_fault(
    sink: &mut BufWriter<&TcpStream>,
    stream: &TcpStream,
    frame: &[u8],
    action: FaultAction,
) -> bool {
    match action {
        FaultAction::Deliver => write_frame(sink, frame).is_ok(),
        FaultAction::Drop | FaultAction::Hang => true,
        FaultAction::Duplicate => {
            write_frame(sink, frame).is_ok() && write_frame(sink, frame).is_ok()
        }
        FaultAction::Delay { ms } => {
            // Flush what is already buffered so the delay is observable as
            // wire silence, then stall this frame and everything after it.
            let _ = sink.flush();
            std::thread::sleep(Duration::from_millis(ms));
            write_frame(sink, frame).is_ok()
        }
        FaultAction::BitFlip { bit } => {
            let mut bytes = encode_frame(frame);
            // Flip inside the payload+CRC body, never the length prefix: a
            // flipped length desynchronizes the stream instead of testing
            // the integrity check.
            let body_bits = ((bytes.len() - 4) * 8) as u64;
            let bit = (bit % body_bits) as usize;
            bytes[4 + bit / 8] ^= 1 << (bit % 8);
            sink.write_all(&bytes).is_ok()
        }
        FaultAction::TruncateClose { keep } => {
            let bytes = encode_frame(frame);
            let keep = 1 + (keep % (bytes.len() as u64 - 1)) as usize;
            let _ = sink.write_all(&bytes[..keep]);
            let _ = sink.flush();
            let _ = stream.shutdown(Shutdown::Both);
            false
        }
    }
}

impl Connection {
    /// Connects to `addr` (e.g. `"127.0.0.1:4000"`).
    ///
    /// # Errors
    ///
    /// Propagates the underlying socket errors.
    pub fn connect(addr: &str) -> io::Result<Self> {
        Connection::from_stream(TcpStream::connect(addr)?)
    }

    /// Connects to `addr` with outgoing frames subjected to `plan` — the
    /// chaos-testing entry point. See [`Connection::with_faults`].
    ///
    /// # Errors
    ///
    /// Propagates the underlying socket errors.
    pub fn connect_with_faults(addr: &str, plan: &FaultPlan) -> io::Result<Self> {
        Connection::with_faults(TcpStream::connect(addr)?, plan)
    }

    /// Wraps an accepted or connected stream.
    ///
    /// # Errors
    ///
    /// Propagates the underlying socket errors.
    pub fn from_stream(stream: TcpStream) -> io::Result<Self> {
        Connection::build(stream, None)
    }

    /// Wraps a stream with outgoing frames subjected to `plan`: at every
    /// frame boundary the writer consults the plan's deterministic injector
    /// and delivers, drops, duplicates, bit-flips, truncates-then-closes,
    /// delays, or hangs. Incoming frames are untouched — faults on the
    /// other direction belong to the peer's plan.
    ///
    /// # Errors
    ///
    /// Propagates the underlying socket errors.
    pub fn with_faults(stream: TcpStream, plan: &FaultPlan) -> io::Result<Self> {
        Connection::build(stream, Some(plan.injector(0)))
    }

    fn build(stream: TcpStream, mut faults: Option<FaultInjector>) -> io::Result<Self> {
        let peer = stream.peer_addr()?;
        stream.set_nodelay(true)?;

        let (outbox_tx, outbox_rx) = bounded::<Vec<u8>>(CONNECTION_QUEUE);
        let (inbox_tx, inbox_rx) = bounded::<Vec<u8>>(CONNECTION_QUEUE);
        let read_fault = Arc::new(Mutex::new(None::<String>));

        let write_stream = stream.try_clone()?;
        let writer = std::thread::spawn(move || {
            let mut sink = BufWriter::new(&write_stream);
            let mut batch: Vec<Vec<u8>> = Vec::new();
            let mut writing = true;
            // recv_many drains every frame queued since the last wakeup, so a
            // burst of sends becomes one write + one flush (outbox
            // coalescing). Exit on disconnect (sender dropped) or I/O error
            // (peer gone — the reader side reports it). When the fault
            // injector silences the connection the loop keeps draining so
            // senders never block, it just stops writing.
            while outbox_rx.recv_many(&mut batch).is_ok() {
                for frame in batch.drain(..) {
                    if !writing {
                        continue;
                    }
                    let ok = match faults.as_mut() {
                        // The zero-cost path: no plan, no decision — one
                        // branch per frame.
                        None => write_frame(&mut sink, &frame).is_ok(),
                        Some(injector) => write_frame_with_fault(
                            &mut sink,
                            &write_stream,
                            &frame,
                            injector.next_action(),
                        ),
                    };
                    if !ok {
                        // Keep draining (senders must not wedge), but stop
                        // touching the socket.
                        writing = false;
                    }
                }
                if writing && sink.flush().is_err() {
                    writing = false;
                }
            }
            if writing {
                let _ = sink.flush();
                let _ = write_stream.shutdown(Shutdown::Write);
            }
        });

        let read_stream = stream.try_clone()?;
        let fault_slot = Arc::clone(&read_fault);
        let reader = std::thread::spawn(move || {
            let mut source = io::BufReader::new(&read_stream);
            // A full inbox blocks this thread (bounded send), which stops the
            // socket reads: backpressure reaches the peer via TCP.
            loop {
                match read_frame(&mut source) {
                    Ok(Some(frame)) => {
                        if inbox_tx.send(frame).is_err() {
                            return;
                        }
                    }
                    Ok(None) => return,
                    Err(err) => {
                        // Record *why* the stream died — a CRC mismatch or a
                        // torn frame is corruption the owner must be able to
                        // distinguish from a clean hangup.
                        *fault_slot.lock().expect("read fault slot poisoned") =
                            Some(err.to_string());
                        return;
                    }
                }
            }
            // Dropping inbox_tx disconnects the inbox: recv returns
            // Disconnected and the owner knows the peer is gone.
        });

        Ok(Connection {
            outbox: Some(outbox_tx),
            inbox: inbox_rx,
            stream,
            peer,
            writer: Some(writer),
            reader: Some(reader),
            read_fault,
        })
    }

    /// The peer's socket address.
    pub fn peer(&self) -> SocketAddr {
        self.peer
    }

    /// Queues `frame` for sending, blocking when the outbox is full.
    ///
    /// # Errors
    ///
    /// Returns the frame when the connection is closed.
    pub fn send(&self, frame: Vec<u8>) -> Result<(), SendError<Vec<u8>>> {
        match &self.outbox {
            Some(outbox) => outbox.send(frame),
            None => Err(SendError(frame)),
        }
    }

    /// Receives the next frame, blocking until one arrives; `None` when the
    /// peer closed the connection.
    pub fn recv(&self) -> Option<Vec<u8>> {
        self.inbox.recv().ok()
    }

    /// Receives the next frame, blocking until `deadline` at the latest.
    ///
    /// # Errors
    ///
    /// Same contract as [`BoundedReceiver::recv_deadline`].
    pub fn recv_deadline(&self, deadline: Instant) -> Result<Vec<u8>, RecvError> {
        self.inbox.recv_deadline(deadline)
    }

    /// Flushes queued frames and closes the sending side, so the peer's
    /// reader observes a clean EOF once everything queued has arrived. If the
    /// peer has stopped reading and the drain makes no progress within
    /// [`DRAIN_DEADLINE`], the socket is forced shut instead — finishing a
    /// connection never blocks forever on a wedged peer.
    pub fn finish(&mut self) {
        // Dropping the outbox sender lets the writer thread drain the queue,
        // flush, shut the write side down and exit.
        self.outbox = None;
        if let Some(writer) = self.writer.take() {
            let deadline = Instant::now() + DRAIN_DEADLINE;
            while !writer.is_finished() && Instant::now() < deadline {
                std::thread::sleep(Duration::from_millis(2));
            }
            if !writer.is_finished() {
                let _ = self.stream.shutdown(Shutdown::Both);
            }
            let _ = writer.join();
        }
    }

    /// Why the reader side stopped, when it stopped on damage rather than a
    /// clean EOF: a CRC mismatch ([`FrameCorrupt`]), a torn frame, an
    /// oversized declared length, or a socket error. `None` while the reader
    /// is healthy or after a clean close — the owner uses this to tell "the
    /// peer hung up" from "the peer's bytes arrived damaged".
    pub fn read_fault(&self) -> Option<String> {
        self.read_fault
            .lock()
            .expect("read fault slot poisoned")
            .clone()
    }

    /// Forces both socket halves shut. Queued-but-unwritten frames are lost
    /// and the peer sees a reset rather than a clean EOF; both local threads
    /// (and a peer blocked reading this connection) unblock promptly. This is
    /// the remedy for a peer that is wedged or has been written off — use
    /// [`Connection::finish`] for a graceful close.
    pub fn shutdown(&self) {
        let _ = self.stream.shutdown(Shutdown::Both);
    }
}

impl Drop for Connection {
    fn drop(&mut self) {
        self.finish();
        // Unblock the reader thread even if the peer never closes.
        let _ = self.stream.shutdown(Shutdown::Both);
        if let Some(reader) = self.reader.take() {
            let _ = reader.join();
        }
    }
}

/// A listener handing out framed [`Connection`]s.
pub struct Listener {
    inner: TcpListener,
}

impl Listener {
    /// Binds an ephemeral localhost port (the coordinator's listen socket:
    /// workers are told the resulting address).
    ///
    /// # Errors
    ///
    /// Propagates the underlying socket errors.
    pub fn bind_local() -> io::Result<Self> {
        Ok(Listener {
            inner: TcpListener::bind("127.0.0.1:0")?,
        })
    }

    /// The bound address (pass this to workers).
    ///
    /// # Errors
    ///
    /// Propagates the underlying socket error.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.inner.local_addr()
    }

    /// Accepts the next connection, waiting at most until `deadline` — a
    /// worker that never dials in must not hang the coordinator forever.
    ///
    /// # Errors
    ///
    /// `TimedOut` when the deadline passes, otherwise the socket error.
    pub fn accept_deadline(&self, deadline: Instant) -> io::Result<Connection> {
        Connection::from_stream(self.accept_stream(deadline)?)
    }

    /// Accepts the next connection like [`Listener::accept_deadline`], but
    /// with the outgoing direction subjected to `plan` — how a chaos-testing
    /// coordinator injects faults on the coordinator→worker leg.
    ///
    /// # Errors
    ///
    /// Same contract as [`Listener::accept_deadline`].
    pub fn accept_deadline_with_faults(
        &self,
        deadline: Instant,
        plan: &FaultPlan,
    ) -> io::Result<Connection> {
        Connection::with_faults(self.accept_stream(deadline)?, plan)
    }

    fn accept_stream(&self, deadline: Instant) -> io::Result<TcpStream> {
        self.inner.set_nonblocking(true)?;
        let result = loop {
            match self.inner.accept() {
                Ok((stream, _)) => break Ok(stream),
                Err(err) if err.kind() == io::ErrorKind::WouldBlock => {
                    if Instant::now() >= deadline {
                        break Err(io::Error::new(
                            io::ErrorKind::TimedOut,
                            "no connection before the deadline",
                        ));
                    }
                    std::thread::sleep(Duration::from_millis(2));
                }
                Err(err) => break Err(err),
            }
        };
        self.inner.set_nonblocking(false)?;
        let stream = result?;
        stream.set_nonblocking(false)?;
        Ok(stream)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn bounded_channel_delivers_in_order_across_threads() {
        let (tx, rx) = bounded::<u64>(4);
        let producer = std::thread::spawn(move || {
            for i in 0..100 {
                tx.send(i).unwrap();
            }
        });
        let got: Vec<u64> = (0..100).map(|_| rx.recv().unwrap()).collect();
        producer.join().unwrap();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
        assert_eq!(rx.recv(), Err(RecvError::Disconnected));
    }

    #[test]
    fn bounded_send_blocks_on_full_queue_until_a_recv() {
        let (tx, rx) = bounded::<u32>(2);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert!(tx.try_send(3).is_err(), "queue of 2 is full");

        let blocked = Arc::new(AtomicUsize::new(0));
        let observed = Arc::clone(&blocked);
        let sender = std::thread::spawn(move || {
            tx.send(3).unwrap();
            observed.store(1, Ordering::SeqCst);
        });
        std::thread::sleep(Duration::from_millis(30));
        assert_eq!(blocked.load(Ordering::SeqCst), 0, "send must block");
        assert_eq!(rx.recv(), Ok(1));
        sender.join().unwrap();
        assert_eq!(blocked.load(Ordering::SeqCst), 1);
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.recv(), Ok(3));
    }

    #[test]
    fn recv_deadline_times_out_and_then_disconnects() {
        let (tx, rx) = bounded::<u8>(1);
        let start = Instant::now();
        assert_eq!(
            rx.recv_deadline(start + Duration::from_millis(30)),
            Err(RecvError::Timeout)
        );
        assert!(Instant::now() - start >= Duration::from_millis(30));
        drop(tx);
        assert_eq!(
            rx.recv_deadline(Instant::now() + Duration::from_secs(1)),
            Err(RecvError::Disconnected)
        );
    }

    #[test]
    fn recv_many_drains_a_burst_in_one_wakeup() {
        let (tx, rx) = bounded::<u32>(16);
        for i in 0..5 {
            tx.send(i).unwrap();
        }
        let mut batch = Vec::new();
        assert_eq!(rx.recv_many(&mut batch), Ok(5));
        assert_eq!(batch, vec![0, 1, 2, 3, 4]);
        drop(tx);
        assert_eq!(rx.recv_many(&mut batch), Err(RecvError::Disconnected));
    }

    #[test]
    fn recv_many_deadline_drains_bursts_and_times_out_when_idle() {
        let (tx, rx) = bounded::<u32>(16);
        for i in 0..4 {
            tx.send(i).unwrap();
        }
        let mut batch = Vec::new();
        let deadline = Instant::now() + Duration::from_secs(1);
        assert_eq!(rx.recv_many_deadline(&mut batch, deadline), Ok(4));
        assert_eq!(batch, vec![0, 1, 2, 3]);
        // Idle queue: the deadline must bound the wait.
        let start = Instant::now();
        assert_eq!(
            rx.recv_many_deadline(&mut batch, start + Duration::from_millis(30)),
            Err(RecvError::Timeout)
        );
        assert!(Instant::now() - start >= Duration::from_millis(30));
        assert_eq!(batch.len(), 4, "a timeout must not disturb the batch");
        // A sender arriving mid-wait wakes the drain before the deadline.
        let far = Instant::now() + Duration::from_secs(5);
        let producer = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            tx.send(9).unwrap();
            drop(tx);
        });
        batch.clear();
        assert_eq!(rx.recv_many_deadline(&mut batch, far), Ok(1));
        assert_eq!(batch, vec![9]);
        producer.join().unwrap();
        assert_eq!(
            rx.recv_many_deadline(&mut batch, far),
            Err(RecvError::Disconnected)
        );
    }

    #[test]
    fn dropped_receiver_fails_sends_instead_of_blocking() {
        let (tx, rx) = bounded::<u32>(1);
        tx.send(1).unwrap();
        drop(rx);
        // The queue was full; a dropped receiver must wake/fail the send.
        assert!(tx.send(2).is_err());
    }

    #[test]
    fn frames_round_trip_including_empty_and_eof_between_frames() {
        let mut buffer = Vec::new();
        write_frame(&mut buffer, b"hello").unwrap();
        write_frame(&mut buffer, b"").unwrap();
        write_frame(&mut buffer, &[0xAB; 300]).unwrap();
        let mut cursor = io::Cursor::new(buffer);
        assert_eq!(read_frame(&mut cursor).unwrap().unwrap(), b"hello");
        assert_eq!(read_frame(&mut cursor).unwrap().unwrap(), b"");
        assert_eq!(read_frame(&mut cursor).unwrap().unwrap(), vec![0xAB; 300]);
        assert!(read_frame(&mut cursor).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn truncated_frame_is_an_error_not_an_eof() {
        let mut buffer = Vec::new();
        write_frame(&mut buffer, b"payload").unwrap();
        buffer.truncate(6); // inside the payload
        let mut cursor = io::Cursor::new(buffer);
        assert!(read_frame(&mut cursor).is_err());
    }

    #[test]
    fn oversized_declared_length_is_rejected() {
        let mut buffer = ((MAX_FRAME_LEN + 1) as u32).to_le_bytes().to_vec();
        buffer.extend_from_slice(b"x");
        let mut cursor = io::Cursor::new(buffer);
        assert!(read_frame(&mut cursor).is_err());
    }

    #[test]
    fn connection_round_trips_a_burst_of_frames() {
        let listener = Listener::bind_local().unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let client = std::thread::spawn(move || {
            let mut conn = Connection::connect(&addr).unwrap();
            for i in 0..200u32 {
                conn.send(i.to_le_bytes().to_vec()).unwrap();
            }
            // Echo back everything the server returns doubled.
            let mut doubled = Vec::new();
            for _ in 0..200 {
                let frame = conn.recv().expect("server reply");
                doubled.push(u32::from_le_bytes(frame.try_into().unwrap()));
            }
            conn.finish();
            doubled
        });

        let server = listener
            .accept_deadline(Instant::now() + Duration::from_secs(5))
            .unwrap();
        for _ in 0..200 {
            let frame = server.recv().expect("client frame");
            let value = u32::from_le_bytes(frame.try_into().unwrap());
            server.send((value * 2).to_le_bytes().to_vec()).unwrap();
        }
        let doubled = client.join().unwrap();
        assert_eq!(doubled, (0..200u32).map(|i| i * 2).collect::<Vec<_>>());
        // After the client's finish(), the server sees a clean close.
        assert!(server.recv().is_none());
    }

    #[test]
    fn frame_at_exactly_max_len_round_trips() {
        // The boundary case: a payload of exactly MAX_FRAME_LEN is legal on
        // both sides; one byte more is rejected by the writer.
        let payload = vec![0x5A_u8; MAX_FRAME_LEN];
        let mut buffer = Vec::with_capacity(MAX_FRAME_LEN + 8);
        write_frame(&mut buffer, &payload).unwrap();
        let mut cursor = io::Cursor::new(buffer);
        assert_eq!(read_frame(&mut cursor).unwrap().unwrap(), payload);
        assert!(read_frame(&mut cursor).unwrap().is_none(), "clean EOF");

        let oversized = vec![0u8; MAX_FRAME_LEN + 1];
        assert!(write_frame(&mut Vec::new(), &oversized).is_err());
    }

    #[test]
    fn crc_mismatch_is_a_detected_frame_corrupt_not_a_parse_error() {
        let mut buffer = Vec::new();
        write_frame(&mut buffer, br#"{"tag":"record","trial":7}"#).unwrap();
        // Damage one payload byte; length prefix and trailer stay intact.
        buffer[10] ^= 0x01;
        let mut cursor = io::Cursor::new(buffer);
        let err = read_frame(&mut cursor).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(is_frame_corrupt(&err), "must carry FrameCorrupt: {err}");
        let corrupt = err
            .get_ref()
            .and_then(|inner| inner.downcast_ref::<FrameCorrupt>())
            .expect("inner FrameCorrupt");
        assert_ne!(corrupt.expected, corrupt.actual);
    }

    #[test]
    fn damaged_trailer_is_also_frame_corrupt() {
        let mut buffer = Vec::new();
        write_frame(&mut buffer, b"payload").unwrap();
        let last = buffer.len() - 1;
        buffer[last] ^= 0x80;
        let mut cursor = io::Cursor::new(buffer);
        let err = read_frame(&mut cursor).unwrap_err();
        assert!(is_frame_corrupt(&err));
    }

    #[test]
    fn truncation_errors_are_not_frame_corrupt() {
        let mut buffer = Vec::new();
        write_frame(&mut buffer, b"payload").unwrap();
        buffer.truncate(6);
        let mut cursor = io::Cursor::new(buffer);
        let err = read_frame(&mut cursor).unwrap_err();
        assert!(!is_frame_corrupt(&err), "truncation is a different failure");
    }

    #[test]
    fn encode_frame_matches_write_frame() {
        let payload = b"the two framing paths must agree byte for byte";
        let mut written = Vec::new();
        write_frame(&mut written, payload).unwrap();
        assert_eq!(encode_frame(payload), written);
    }

    #[test]
    fn fault_plan_bit_flips_surface_as_read_faults_not_payloads() {
        use crate::fault::FaultPlan;

        let mut plan = FaultPlan::new(11);
        plan.grace = 0;
        plan.bit_flip = 1.0; // every frame arrives damaged
        let listener = Listener::bind_local().unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let client = std::thread::spawn(move || {
            let mut conn = Connection::connect_with_faults(&addr, &plan).unwrap();
            conn.send(b"this frame will be mangled".to_vec()).unwrap();
            conn.finish();
        });
        let server = listener
            .accept_deadline(Instant::now() + Duration::from_secs(5))
            .unwrap();
        // The damaged frame must never surface as a payload; the reader
        // stops and records why.
        assert!(server.recv().is_none(), "corrupt frame must not deliver");
        let fault = server.read_fault().expect("read fault recorded");
        assert!(fault.contains("CRC"), "fault should name the CRC: {fault}");
        client.join().unwrap();
    }

    #[test]
    fn fault_plan_grace_then_drop_silences_after_the_hello() {
        use crate::fault::FaultPlan;

        let mut plan = FaultPlan::new(5);
        plan.grace = 1;
        plan.drop = 1.0; // everything after the grace frame vanishes
        let listener = Listener::bind_local().unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let client = std::thread::spawn(move || {
            let mut conn = Connection::connect_with_faults(&addr, &plan).unwrap();
            conn.send(b"hello".to_vec()).unwrap();
            for _ in 0..10 {
                conn.send(b"dropped".to_vec()).unwrap();
            }
            conn.finish();
        });
        let server = listener
            .accept_deadline(Instant::now() + Duration::from_secs(5))
            .unwrap();
        assert_eq!(server.recv().expect("grace frame"), b"hello");
        // Every later frame was dropped; the writer still drains and closes
        // cleanly, so the server sees EOF, not a hang.
        assert!(server.recv().is_none());
        assert!(
            server.read_fault().is_none(),
            "drops are silent, not damage"
        );
        client.join().unwrap();
    }

    #[test]
    fn fault_plan_duplicates_deliver_the_frame_twice() {
        use crate::fault::FaultPlan;

        let mut plan = FaultPlan::new(3);
        plan.grace = 0;
        plan.duplicate = 1.0;
        let listener = Listener::bind_local().unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let client = std::thread::spawn(move || {
            let mut conn = Connection::connect_with_faults(&addr, &plan).unwrap();
            conn.send(b"once".to_vec()).unwrap();
            conn.finish();
        });
        let server = listener
            .accept_deadline(Instant::now() + Duration::from_secs(5))
            .unwrap();
        assert_eq!(server.recv().expect("first copy"), b"once");
        assert_eq!(server.recv().expect("second copy"), b"once");
        assert!(server.recv().is_none());
        client.join().unwrap();
    }

    #[test]
    fn truncate_close_leaves_a_torn_frame_on_the_wire() {
        use crate::fault::FaultPlan;

        let mut plan = FaultPlan::new(17);
        plan.grace = 0;
        plan.truncate = 1.0;
        let listener = Listener::bind_local().unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let client = std::thread::spawn(move || {
            let mut conn = Connection::connect_with_faults(&addr, &plan).unwrap();
            conn.send(b"this frame is cut short mid-write".to_vec())
                .unwrap();
            // finish() must not wedge even though the socket is already shut.
            conn.finish();
        });
        let server = listener
            .accept_deadline(Instant::now() + Duration::from_secs(5))
            .unwrap();
        assert!(server.recv().is_none(), "torn frame must not deliver");
        // A tear lands either as an in-frame EOF or (if the close races the
        // read) a reset — both are recorded, neither is a clean hangup.
        let fault = server.read_fault().expect("torn frame recorded");
        assert!(!fault.is_empty(), "fault description must not be empty");
        client.join().unwrap();
    }

    #[test]
    fn same_seed_same_fault_schedule_on_a_live_connection() {
        use crate::fault::FaultPlan;

        // Two runs with the same plan must deliver exactly the same subset
        // of frames — the reproducibility contract chaos runs rely on.
        let deliveries = |seed: u64| -> Vec<Vec<u8>> {
            let mut plan = FaultPlan::new(seed);
            plan.grace = 1;
            plan.drop = 0.5;
            let listener = Listener::bind_local().unwrap();
            let addr = listener.local_addr().unwrap().to_string();
            let client = std::thread::spawn(move || {
                let mut conn = Connection::connect_with_faults(&addr, &plan).unwrap();
                for i in 0..64u32 {
                    conn.send(i.to_le_bytes().to_vec()).unwrap();
                }
                conn.finish();
            });
            let server = listener
                .accept_deadline(Instant::now() + Duration::from_secs(5))
                .unwrap();
            let mut got = Vec::new();
            while let Some(frame) = server.recv() {
                got.push(frame);
            }
            client.join().unwrap();
            got
        };
        let first = deliveries(99);
        let second = deliveries(99);
        let other = deliveries(100);
        assert_eq!(first, second, "same seed, same schedule");
        assert!(first.len() < 64, "a 50% drop plan must drop something");
        assert!(!first.is_empty(), "the grace frame always lands");
        assert_ne!(first, other, "different seeds should diverge");
    }

    #[test]
    fn accept_deadline_times_out_without_a_dialer() {
        let listener = Listener::bind_local().unwrap();
        match listener.accept_deadline(Instant::now() + Duration::from_millis(40)) {
            Err(err) => assert_eq!(err.kind(), io::ErrorKind::TimedOut),
            Ok(_) => panic!("accept without a dialer must time out"),
        }
    }
}

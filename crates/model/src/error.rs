//! Error types shared across the agreement workspace.

use std::error::Error;
use std::fmt;

use crate::value::Bit;

/// Errors produced by the base model types.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ModelError {
    /// A byte that is neither `0` nor `1` was interpreted as a [`Bit`].
    InvalidBit(u8),
    /// A write-once output register was written twice with different values.
    ///
    /// This is precisely the event ruled out by *measure one correctness*
    /// (Definition 2): the simulation converts it into a reported violation.
    ConflictingDecision {
        /// The value already present in the register.
        existing: Bit,
        /// The conflicting value of the attempted write.
        attempted: Bit,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::InvalidBit(v) => write!(f, "invalid bit value {v}, expected 0 or 1"),
            ModelError::ConflictingDecision {
                existing,
                attempted,
            } => write!(
                f,
                "conflicting decision: output already {existing}, attempted to write {attempted}"
            ),
        }
    }
}

impl Error for ModelError {}

/// Errors raised while validating a system configuration or protocol thresholds.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ConfigError {
    /// The system must contain at least one processor.
    EmptySystem,
    /// The fault budget `t` must satisfy `0 <= t < n`.
    FaultBudgetTooLarge {
        /// Number of processors.
        n: usize,
        /// Requested fault budget.
        t: usize,
    },
    /// The resilience bound required by the protocol was violated
    /// (e.g. Theorem 4 requires `t < n/6` for the reset-tolerant protocol).
    ResilienceExceeded {
        /// Number of processors.
        n: usize,
        /// Requested fault budget.
        t: usize,
        /// Human-readable description of the bound, e.g. `"t < n/6"`.
        bound: &'static str,
    },
    /// Threshold values violate one of the Theorem 4 constraints.
    InvalidThresholds {
        /// Which constraint failed, e.g. `"T1 >= T2"`.
        constraint: &'static str,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::EmptySystem => write!(f, "system must contain at least one processor"),
            ConfigError::FaultBudgetTooLarge { n, t } => {
                write!(f, "fault budget t={t} must be smaller than n={n}")
            }
            ConfigError::ResilienceExceeded { n, t, bound } => {
                write!(
                    f,
                    "fault budget t={t} with n={n} violates the resilience bound {bound}"
                )
            }
            ConfigError::InvalidThresholds { constraint } => {
                write!(f, "threshold constraint violated: {constraint}")
            }
        }
    }
}

impl Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_error_messages_are_lowercase_and_informative() {
        let e = ModelError::InvalidBit(7);
        assert!(e.to_string().contains('7'));
        let e = ModelError::ConflictingDecision {
            existing: Bit::Zero,
            attempted: Bit::One,
        };
        let msg = e.to_string();
        assert!(msg.contains("conflicting decision"));
        assert!(msg.contains('0') && msg.contains('1'));
    }

    #[test]
    fn config_error_messages_mention_parameters() {
        let e = ConfigError::FaultBudgetTooLarge { n: 4, t: 4 };
        assert!(e.to_string().contains("t=4"));
        assert!(e.to_string().contains("n=4"));
        let e = ConfigError::ResilienceExceeded {
            n: 12,
            t: 3,
            bound: "t < n/6",
        };
        assert!(e.to_string().contains("t < n/6"));
        let e = ConfigError::InvalidThresholds {
            constraint: "2*T3 > n",
        };
        assert!(e.to_string().contains("2*T3 > n"));
    }

    #[test]
    fn errors_implement_std_error() {
        fn assert_error<E: std::error::Error + Send + Sync + 'static>() {}
        assert_error::<ModelError>();
        assert_error::<ConfigError>();
    }
}

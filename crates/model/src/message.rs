//! Messages: envelopes and the protocol payload vocabulary.
//!
//! The paper's model (Section 2) lets a message space `M` be arbitrary. For
//! the reproduction we use a single closed [`Payload`] enum covering every
//! protocol in the workspace. This keeps the *full-information* adversary
//! honest: an adversary can pattern-match on any message in flight, exactly as
//! the paper's computationally unbounded adversary can read all message
//! contents.

use std::fmt;

use crate::ids::ProcessorId;
use crate::value::Bit;

/// A step of Bracha-style reliable broadcast.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RbcStep {
    /// The originator's initial transmission of the payload.
    Init,
    /// A witness echoing the originator's payload.
    Echo,
    /// A witness asserting the payload is ready for delivery.
    Ready,
}

impl fmt::Display for RbcStep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            RbcStep::Init => "init",
            RbcStep::Echo => "echo",
            RbcStep::Ready => "ready",
        };
        f.write_str(s)
    }
}

/// Messages exchanged by the committee-election baseline protocol
/// (the simplified Kapron-et-al.-style comparator).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum CommitteeMsg {
    /// A lottery ticket for the election at `level` within `group`.
    Ticket {
        /// Election level in the committee tree (leaves are level 0).
        level: u32,
        /// Group index within the level.
        group: u32,
        /// The random lottery value drawn by the sender.
        ticket: u64,
    },
    /// A final-committee member's current value, exchanged inside the committee.
    Proposal {
        /// The proposing member's current estimate.
        value: Bit,
    },
    /// A final-committee member's announcement of the decided value to everyone.
    Announce {
        /// The decided value.
        value: Bit,
    },
}

/// The payload vocabulary shared by all protocols in the workspace.
///
/// Each protocol uses a subset of the variants; the single enum exists so that
/// full-information adversaries can inspect any in-flight message without
/// knowing which protocol produced it.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Payload {
    /// A round-`round` report of the sender's current estimate: the message
    /// `(r_p, x_p)` of the Section 3 reset-tolerant protocol and of Ben-Or's
    /// first phase.
    Report {
        /// The sender's round number.
        round: u64,
        /// The sender's current estimate.
        value: Bit,
    },
    /// Ben-Or's second-phase proposal `(r, v)`; `None` encodes the
    /// "no preference" (`?`) proposal.
    Proposal {
        /// The sender's round number.
        round: u64,
        /// The proposed value, if the sender saw a majority in phase one.
        value: Option<Bit>,
    },
    /// A Bracha-agreement phase vote. These are carried inside reliable
    /// broadcast ([`Payload::Rbc`]) in the full protocol.
    BrachaVote {
        /// The sender's round number.
        round: u64,
        /// The phase within the round (1, 2 or 3).
        phase: u8,
        /// The value voted for; `None` encodes "no majority seen".
        value: Option<Bit>,
    },
    /// A reliable-broadcast transport step carrying an inner payload on behalf
    /// of `origin`. `broadcast_id` disambiguates concurrent broadcasts by the
    /// same origin (the protocol chooses it, e.g. by encoding round and phase).
    Rbc {
        /// Which step of the broadcast this message implements.
        step: RbcStep,
        /// The processor whose payload is being broadcast.
        origin: ProcessorId,
        /// Origin-scoped identifier of this broadcast instance.
        broadcast_id: u64,
        /// The payload being reliably broadcast.
        inner: Box<Payload>,
    },
    /// A committee-protocol message.
    Committee(CommitteeMsg),
    /// Notification that the sender has decided `value`.
    Decided {
        /// The decided value.
        value: Bit,
    },
    /// Uninterpreted bytes; used by the threaded runtime's probes and by tests.
    Opaque(Vec<u8>),
}

impl Payload {
    /// The protocol round this payload belongs to, when it carries one.
    pub fn round(&self) -> Option<u64> {
        match self {
            Payload::Report { round, .. }
            | Payload::Proposal { round, .. }
            | Payload::BrachaVote { round, .. } => Some(*round),
            Payload::Rbc { inner, .. } => inner.round(),
            _ => None,
        }
    }

    /// The bit value this payload advocates, when it unambiguously carries one.
    pub fn advocated_value(&self) -> Option<Bit> {
        match self {
            Payload::Report { value, .. } => Some(*value),
            Payload::Proposal { value, .. } => *value,
            Payload::BrachaVote { value, .. } => *value,
            Payload::Rbc { inner, .. } => inner.advocated_value(),
            Payload::Committee(CommitteeMsg::Proposal { value })
            | Payload::Committee(CommitteeMsg::Announce { value }) => Some(*value),
            Payload::Decided { value } => Some(*value),
            _ => None,
        }
    }

    /// Returns `true` for payloads that announce a final decision.
    pub fn is_decision(&self) -> bool {
        matches!(
            self,
            Payload::Decided { .. } | Payload::Committee(CommitteeMsg::Announce { .. })
        )
    }
}

/// A message in flight: a payload together with its dedicated channel's
/// endpoints. The recipient always correctly identifies the sender, as in the
/// paper's dedicated-channel assumption.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Envelope {
    /// The processor that sent the message.
    pub sender: ProcessorId,
    /// The processor the message is addressed to.
    pub recipient: ProcessorId,
    /// The message contents.
    pub payload: Payload,
}

impl Envelope {
    /// Creates a new envelope.
    pub fn new(sender: ProcessorId, recipient: ProcessorId, payload: Payload) -> Self {
        Envelope {
            sender,
            recipient,
            payload,
        }
    }
}

impl fmt::Display for Envelope {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} -> {}: {:?}",
            self.sender, self.recipient, self.payload
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_round_and_value_are_visible() {
        let p = Payload::Report {
            round: 3,
            value: Bit::One,
        };
        assert_eq!(p.round(), Some(3));
        assert_eq!(p.advocated_value(), Some(Bit::One));
        assert!(!p.is_decision());
    }

    #[test]
    fn proposal_question_mark_has_no_advocated_value() {
        let p = Payload::Proposal {
            round: 2,
            value: None,
        };
        assert_eq!(p.round(), Some(2));
        assert_eq!(p.advocated_value(), None);
    }

    #[test]
    fn rbc_delegates_to_inner_payload() {
        let inner = Payload::BrachaVote {
            round: 5,
            phase: 2,
            value: Some(Bit::Zero),
        };
        let p = Payload::Rbc {
            step: RbcStep::Echo,
            origin: ProcessorId::new(1),
            broadcast_id: 42,
            inner: Box::new(inner),
        };
        assert_eq!(p.round(), Some(5));
        assert_eq!(p.advocated_value(), Some(Bit::Zero));
    }

    #[test]
    fn decision_payloads_are_detected() {
        assert!(Payload::Decided { value: Bit::One }.is_decision());
        assert!(Payload::Committee(CommitteeMsg::Announce { value: Bit::Zero }).is_decision());
        assert!(!Payload::Opaque(vec![1, 2, 3]).is_decision());
    }

    #[test]
    fn committee_ticket_has_no_round_or_value() {
        let p = Payload::Committee(CommitteeMsg::Ticket {
            level: 1,
            group: 0,
            ticket: 99,
        });
        assert_eq!(p.round(), None);
        assert_eq!(p.advocated_value(), None);
    }

    #[test]
    fn envelope_display_names_both_endpoints() {
        let e = Envelope::new(
            ProcessorId::new(0),
            ProcessorId::new(3),
            Payload::Decided { value: Bit::One },
        );
        let s = e.to_string();
        assert!(s.contains("p1"));
        assert!(s.contains("p4"));
    }

    #[test]
    fn rbc_step_display() {
        assert_eq!(RbcStep::Init.to_string(), "init");
        assert_eq!(RbcStep::Echo.to_string(), "echo");
        assert_eq!(RbcStep::Ready.to_string(), "ready");
    }
}

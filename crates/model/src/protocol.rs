//! The protocol abstraction: event-driven state machines driven by an engine.
//!
//! An *algorithm* in the paper (Section 2) is a family of distributions
//! describing how a processor updates its state and emits messages in response
//! to a received message. We realize this as the [`Protocol`] trait: an
//! event-driven state machine receiving callbacks from an execution engine
//! (the window engine of `agreement-sim`, the asynchronous engine, or the
//! threaded runtime of `agreement-net`) through a [`Context`] that provides
//! message sending, private randomness and the write-once output bit.

use std::fmt;

use crate::config::SystemConfig;
use crate::ids::ProcessorId;
use crate::message::Payload;
use crate::value::Bit;

/// The services an execution engine provides to a protocol state machine.
///
/// # Sending conventions
///
/// [`Context::broadcast`] sends to every processor **including** the caller:
/// each processor owns a dedicated channel to itself, and the engines deliver
/// self-addressed messages exactly like any other message (subject to the
/// adversary's delivery sets). This matches the counting in the proof of
/// Theorem 4, where the `n - 2t` same-round messages a processor collects in a
/// window may include its own. (The paper notes self-messages are equivalent
/// to keeping the information in local state because no reset can occur
/// between a window's sending and receiving steps.)
pub trait Context {
    /// The identity of the processor this context belongs to.
    fn id(&self) -> ProcessorId;

    /// The static system configuration (`n`, `t`).
    fn config(&self) -> SystemConfig;

    /// The processor's immutable input bit (survives resets).
    fn input(&self) -> Bit;

    /// Queues a message to `to`. Delivery is entirely under adversary control.
    fn send(&mut self, to: ProcessorId, payload: Payload);

    /// Samples one unbiased private random bit.
    fn random_bit(&mut self) -> Bit;

    /// Samples a uniformly random integer in `0..bound`.
    ///
    /// # Panics
    ///
    /// Implementations panic if `bound` is zero.
    fn random_range(&mut self, bound: u64) -> u64;

    /// Samples a full-width random `u64` (lottery tickets).
    fn random_ticket(&mut self) -> u64;

    /// Writes the processor's write-once output bit.
    ///
    /// Writing the same value twice is a no-op; writing a conflicting value is
    /// recorded by the engine as a correctness violation (it never panics).
    fn decide(&mut self, value: Bit);

    /// The current value of the write-once output bit, if written.
    fn decision(&self) -> Option<Bit>;

    /// Queues `payload` to every processor, including the caller itself.
    fn broadcast(&mut self, payload: Payload) {
        let n = self.config().n();
        for to in ProcessorId::all(n) {
            self.send(to, payload.clone());
        }
    }

    /// Queues `payload` to each processor in `recipients`, in slice order.
    ///
    /// Unlike [`Context::broadcast`] the caller is **not** implicitly
    /// included — pass its id in the set if it should hear the message.
    /// Duplicate ids queue one message per occurrence. This is the primitive
    /// committee-sampled protocols are built on: engines with a sparse
    /// message fabric implement it with one shared payload and
    /// O(|recipients|) queue work, so a committee multicast costs the
    /// committee, not the whole system.
    fn multicast(&mut self, recipients: &[ProcessorId], payload: Payload) {
        for &to in recipients {
            self.send(to, payload.clone());
        }
    }
}

/// An adversary-visible summary of a protocol state machine's state.
///
/// The paper's adversary has unrestricted access to the internal states of all
/// processors. Exposing a digest (rather than the concrete state type) keeps
/// the adversary implementations protocol-agnostic while still giving them the
/// information the paper's adversary strategies rely on: the current round,
/// the current estimate `x_p`, and whether/what the processor has decided.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StateDigest {
    /// The processor's current round number, or `None` while it is
    /// resynchronizing after a reset.
    pub round: Option<u64>,
    /// The processor's current estimate `x_p`, if it has one.
    pub estimate: Option<Bit>,
    /// The value the protocol believes it has decided, if any.
    pub decided: Option<Bit>,
    /// How many resets the protocol has observed.
    pub reset_count: u64,
    /// A protocol-specific phase label, for diagnostics.
    pub phase: &'static str,
}

impl StateDigest {
    /// A digest for a freshly initialized protocol with estimate `estimate`.
    pub fn initial(estimate: Bit) -> Self {
        StateDigest {
            round: Some(1),
            estimate: Some(estimate),
            decided: None,
            reset_count: 0,
            phase: "init",
        }
    }
}

/// An event-driven agreement protocol state machine for a single processor.
///
/// Engines call the methods in this order:
///
/// 1. [`Protocol::on_start`] exactly once, before any message is delivered.
/// 2. [`Protocol::on_message`] once per delivered message.
/// 3. [`Protocol::on_reset`] when the strongly adaptive adversary erases the
///    processor's memory; the implementation must discard all volatile state
///    (everything except what it can recompute from the [`Context`]'s input
///    and its identity) and, if the protocol supports rejoining, begin its
///    resynchronization procedure.
///
/// Implementations must be deterministic given the context's random stream:
/// all randomness must be drawn through the [`Context`].
pub trait Protocol: fmt::Debug + Send {
    /// Called once at the beginning of the execution.
    fn on_start(&mut self, ctx: &mut dyn Context);

    /// Called when a message from `from` is delivered to this processor.
    fn on_message(&mut self, from: ProcessorId, payload: &Payload, ctx: &mut dyn Context);

    /// Called when the adversary resets this processor (erases its memory).
    ///
    /// The default implementation is provided for protocols that do not
    /// support resets (e.g. plain Ben-Or / Bracha under the crash model); it
    /// does nothing, which models a processor that simply keeps going — such
    /// protocols should only be run under non-resetting adversaries.
    fn on_reset(&mut self, ctx: &mut dyn Context) {
        let _ = ctx;
    }

    /// The adversary-visible digest of the current state.
    fn digest(&self) -> StateDigest;
}

/// A factory building one [`Protocol`] instance per processor.
///
/// Builders are cheap, immutable descriptions of a protocol configuration
/// (e.g. a threshold triple); engines call [`ProtocolBuilder::build`] once per
/// processor at the start of every run.
pub trait ProtocolBuilder: fmt::Debug + Send + Sync {
    /// A short human-readable protocol name (used in reports and benches).
    fn name(&self) -> &'static str;

    /// Builds the state machine for processor `id` with input `input`.
    fn build(&self, id: ProcessorId, input: Bit, cfg: &SystemConfig) -> Box<dyn Protocol>;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::Payload;
    use std::collections::VecDeque;

    /// A minimal in-test context used to exercise the default `broadcast`.
    #[derive(Debug)]
    struct RecordingContext {
        id: ProcessorId,
        cfg: SystemConfig,
        input: Bit,
        sent: Vec<(ProcessorId, Payload)>,
        decided: Option<Bit>,
        bits: VecDeque<Bit>,
    }

    impl Context for RecordingContext {
        fn id(&self) -> ProcessorId {
            self.id
        }
        fn config(&self) -> SystemConfig {
            self.cfg
        }
        fn input(&self) -> Bit {
            self.input
        }
        fn send(&mut self, to: ProcessorId, payload: Payload) {
            self.sent.push((to, payload));
        }
        fn random_bit(&mut self) -> Bit {
            self.bits.pop_front().unwrap_or(Bit::Zero)
        }
        fn random_range(&mut self, bound: u64) -> u64 {
            assert!(bound > 0);
            0
        }
        fn random_ticket(&mut self) -> u64 {
            7
        }
        fn decide(&mut self, value: Bit) {
            if self.decided.is_none() {
                self.decided = Some(value);
            }
        }
        fn decision(&self) -> Option<Bit> {
            self.decided
        }
    }

    #[test]
    fn default_broadcast_reaches_every_processor_including_self() {
        let mut ctx = RecordingContext {
            id: ProcessorId::new(1),
            cfg: SystemConfig::new(4, 0).unwrap(),
            input: Bit::One,
            sent: Vec::new(),
            decided: None,
            bits: VecDeque::new(),
        };
        ctx.broadcast(Payload::Decided { value: Bit::One });
        let recipients: Vec<usize> = ctx.sent.iter().map(|(to, _)| to.index()).collect();
        assert_eq!(recipients, vec![0, 1, 2, 3]);
    }

    #[test]
    fn state_digest_initial_is_round_one_undecided() {
        let d = StateDigest::initial(Bit::Zero);
        assert_eq!(d.round, Some(1));
        assert_eq!(d.estimate, Some(Bit::Zero));
        assert_eq!(d.decided, None);
        assert_eq!(d.reset_count, 0);
    }

    #[test]
    fn protocol_trait_is_object_safe() {
        fn assert_object(_: &dyn Protocol) {}
        #[derive(Debug)]
        struct Null;
        impl Protocol for Null {
            fn on_start(&mut self, _ctx: &mut dyn Context) {}
            fn on_message(&mut self, _f: ProcessorId, _p: &Payload, _ctx: &mut dyn Context) {}
            fn digest(&self) -> StateDigest {
                StateDigest::initial(Bit::Zero)
            }
        }
        let null = Null;
        assert_object(&null);
    }
}

//! System configuration and protocol thresholds.
//!
//! [`SystemConfig`] describes the static parameters of the distributed system:
//! the number of processors `n` and the per-window fault budget `t`.
//! [`Thresholds`] captures the three thresholds `T1 >= T2 >= T3` that
//! parameterize the Section 3 reset-tolerant protocol together with the
//! constraints of Theorem 4.

use crate::error::ConfigError;

/// Static parameters of the system: `n` processors, at most `t` of which may be
/// faulty "at one time" (per acceptable window for the strongly adaptive
/// adversary, or in total for the crash adversary).
///
/// # Examples
///
/// ```
/// use agreement_model::SystemConfig;
///
/// let cfg = SystemConfig::new(12, 1)?;
/// assert_eq!(cfg.n(), 12);
/// assert_eq!(cfg.t(), 1);
/// assert_eq!(cfg.quorum(), 11); // n - t
/// # Ok::<(), agreement_model::ConfigError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SystemConfig {
    n: usize,
    t: usize,
}

impl SystemConfig {
    /// Creates a configuration with `n` processors and fault budget `t`.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::EmptySystem`] when `n == 0`, and
    /// [`ConfigError::FaultBudgetTooLarge`] when `t >= n`.
    pub fn new(n: usize, t: usize) -> Result<Self, ConfigError> {
        if n == 0 {
            return Err(ConfigError::EmptySystem);
        }
        if t >= n {
            return Err(ConfigError::FaultBudgetTooLarge { n, t });
        }
        Ok(SystemConfig { n, t })
    }

    /// Creates the configuration used throughout the paper's feasibility
    /// result: `t` is the largest integer strictly below `n / 6`
    /// (Theorem 4 requires `t < n/6`).
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::EmptySystem`] when `n == 0`.
    pub fn with_sixth_resilience(n: usize) -> Result<Self, ConfigError> {
        if n == 0 {
            return Err(ConfigError::EmptySystem);
        }
        // Largest t with 6t < n, i.e. t = ceil(n/6) - 1 when 6 | n, else floor(n/6)... take
        // the direct characterization: t = (n - 1) / 6 satisfies 6t <= n - 1 < n.
        let t = (n - 1) / 6;
        SystemConfig::new(n, t)
    }

    /// Creates the classical Byzantine-optimal configuration `t = ⌈n/3⌉ - 1`
    /// (the largest `t` with `3t < n`), used by Bracha's protocol.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::EmptySystem`] when `n == 0`.
    pub fn with_third_resilience(n: usize) -> Result<Self, ConfigError> {
        if n == 0 {
            return Err(ConfigError::EmptySystem);
        }
        let t = (n - 1) / 3;
        SystemConfig::new(n, t)
    }

    /// Number of processors.
    pub const fn n(&self) -> usize {
        self.n
    }

    /// Fault budget: the maximum number of processors that may be faulty at one time.
    pub const fn t(&self) -> usize {
        self.t
    }

    /// The quorum size `n - t`: the number of processors a correct processor
    /// can always expect to hear from.
    pub const fn quorum(&self) -> usize {
        self.n - self.t
    }

    /// Returns `true` when `t < n/6`, the resilience required by Theorem 4 for
    /// the reset-tolerant protocol.
    pub const fn satisfies_sixth_bound(&self) -> bool {
        6 * self.t < self.n
    }

    /// Returns `true` when `t < n/3`, the optimal Byzantine resilience
    /// achieved by Bracha's protocol.
    pub const fn satisfies_third_bound(&self) -> bool {
        3 * self.t < self.n
    }

    /// Returns `true` when `t < n/2`, the crash resilience required by Ben-Or's
    /// protocol (per the Aguilera–Toueg correctness proof cited in the paper).
    pub const fn satisfies_half_bound(&self) -> bool {
        2 * self.t < self.n
    }
}

/// The three thresholds `T1 >= T2 >= T3` of the Section 3 reset-tolerant protocol.
///
/// Theorem 4 requires, for fault budget `t`:
///
/// * `n - 2t >= T1 >= T2 >= T3 + t`
/// * `2 * T3 > n`
///
/// (The paper additionally notes `2 * T3 > T1` must hold for step 3 to be
/// well-defined; it is implied by `2*T3 > n >= T1` but we check it anyway.)
///
/// # Examples
///
/// ```
/// use agreement_model::{SystemConfig, Thresholds};
///
/// let cfg = SystemConfig::with_sixth_resilience(13)?;
/// let th = Thresholds::recommended(&cfg)?;
/// assert!(th.validate(&cfg).is_ok());
/// # Ok::<(), agreement_model::ConfigError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Thresholds {
    t1: usize,
    t2: usize,
    t3: usize,
}

impl Thresholds {
    /// Creates an unchecked threshold triple. Call [`Thresholds::validate`] to
    /// check the Theorem 4 constraints against a concrete configuration.
    pub const fn new(t1: usize, t2: usize, t3: usize) -> Self {
        Thresholds { t1, t2, t3 }
    }

    /// The setting used in the proof of Theorem 4:
    /// `T1 = n - 2t`, `T2 = T1`, `T3 = n - 3t`.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::ResilienceExceeded`] when `t >= n/6`, in which
    /// case no valid thresholds exist.
    pub fn recommended(cfg: &SystemConfig) -> Result<Self, ConfigError> {
        if !cfg.satisfies_sixth_bound() {
            return Err(ConfigError::ResilienceExceeded {
                n: cfg.n(),
                t: cfg.t(),
                bound: "t < n/6",
            });
        }
        let th = Thresholds {
            t1: cfg.n() - 2 * cfg.t(),
            t2: cfg.n() - 2 * cfg.t(),
            t3: cfg.n() - 3 * cfg.t(),
        };
        th.validate(cfg)?;
        Ok(th)
    }

    /// The wait threshold `T1`: number of same-round messages a processor
    /// waits for in step 2.
    pub const fn t1(&self) -> usize {
        self.t1
    }

    /// The decision threshold `T2`: seeing `T2` matching values allows writing
    /// the output bit in step 3.
    pub const fn t2(&self) -> usize {
        self.t2
    }

    /// The adoption threshold `T3`: seeing `T3` matching values forces the next
    /// estimate deterministically in step 3.
    pub const fn t3(&self) -> usize {
        self.t3
    }

    /// Checks every Theorem 4 constraint against `cfg`.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::InvalidThresholds`] naming the first violated
    /// constraint.
    pub fn validate(&self, cfg: &SystemConfig) -> Result<(), ConfigError> {
        let n = cfg.n();
        let t = cfg.t();
        if self.t1 == 0 {
            return Err(ConfigError::InvalidThresholds {
                constraint: "T1 >= 1",
            });
        }
        if self.t1 > n.saturating_sub(2 * t) {
            return Err(ConfigError::InvalidThresholds {
                constraint: "n - 2t >= T1",
            });
        }
        if self.t1 < self.t2 {
            return Err(ConfigError::InvalidThresholds {
                constraint: "T1 >= T2",
            });
        }
        if self.t2 < self.t3 + t {
            return Err(ConfigError::InvalidThresholds {
                constraint: "T2 >= T3 + t",
            });
        }
        if 2 * self.t3 <= n {
            return Err(ConfigError::InvalidThresholds {
                constraint: "2*T3 > n",
            });
        }
        if 2 * self.t3 <= self.t1 {
            return Err(ConfigError::InvalidThresholds {
                constraint: "2*T3 > T1",
            });
        }
        Ok(())
    }

    /// Returns `true` when [`Thresholds::validate`] succeeds.
    pub fn is_valid_for(&self, cfg: &SystemConfig) -> bool {
        self.validate(cfg).is_ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_rejects_degenerate_parameters() {
        assert_eq!(
            SystemConfig::new(0, 0).unwrap_err(),
            ConfigError::EmptySystem
        );
        assert!(matches!(
            SystemConfig::new(3, 3).unwrap_err(),
            ConfigError::FaultBudgetTooLarge { n: 3, t: 3 }
        ));
        assert!(SystemConfig::new(1, 0).is_ok());
    }

    #[test]
    fn quorum_is_n_minus_t() {
        let cfg = SystemConfig::new(10, 3).unwrap();
        assert_eq!(cfg.quorum(), 7);
    }

    #[test]
    fn sixth_resilience_picks_largest_valid_t() {
        for n in 1..=60 {
            let cfg = SystemConfig::with_sixth_resilience(n).unwrap();
            assert!(cfg.satisfies_sixth_bound(), "n={n} t={}", cfg.t());
            // t + 1 would violate the bound (or exceed n - 1).
            assert!(6 * (cfg.t() + 1) >= n);
        }
    }

    #[test]
    fn third_resilience_picks_largest_valid_t() {
        for n in 1..=40 {
            let cfg = SystemConfig::with_third_resilience(n).unwrap();
            assert!(cfg.satisfies_third_bound(), "n={n} t={}", cfg.t());
            assert!(3 * (cfg.t() + 1) >= n);
        }
    }

    #[test]
    fn resilience_predicates_are_consistent() {
        let cfg = SystemConfig::new(12, 1).unwrap();
        assert!(cfg.satisfies_sixth_bound());
        assert!(cfg.satisfies_third_bound());
        assert!(cfg.satisfies_half_bound());
        let cfg = SystemConfig::new(12, 3).unwrap();
        assert!(!cfg.satisfies_sixth_bound());
        assert!(cfg.satisfies_third_bound());
    }

    #[test]
    fn recommended_thresholds_satisfy_theorem_4() {
        for n in 7..=60 {
            let cfg = SystemConfig::with_sixth_resilience(n).unwrap();
            let th = Thresholds::recommended(&cfg).unwrap();
            assert!(th.validate(&cfg).is_ok(), "n={n}");
            assert_eq!(th.t1(), cfg.n() - 2 * cfg.t());
            assert_eq!(th.t2(), th.t1());
            assert_eq!(th.t3(), cfg.n() - 3 * cfg.t());
        }
    }

    #[test]
    fn recommended_thresholds_fail_beyond_sixth_bound() {
        let cfg = SystemConfig::new(12, 2).unwrap(); // 6t = 12 = n, not strictly below
        assert!(matches!(
            Thresholds::recommended(&cfg),
            Err(ConfigError::ResilienceExceeded { .. })
        ));
    }

    #[test]
    fn validate_detects_each_violated_constraint() {
        let cfg = SystemConfig::new(13, 2).unwrap();
        // Valid reference point.
        let ok = Thresholds::new(9, 9, 7);
        assert!(ok.validate(&cfg).is_ok());
        // T1 too large.
        assert!(matches!(
            Thresholds::new(10, 9, 7).validate(&cfg),
            Err(ConfigError::InvalidThresholds {
                constraint: "n - 2t >= T1"
            })
        ));
        // T2 above T1.
        assert!(matches!(
            Thresholds::new(8, 9, 7).validate(&cfg),
            Err(ConfigError::InvalidThresholds {
                constraint: "T1 >= T2"
            })
        ));
        // T2 < T3 + t.
        assert!(matches!(
            Thresholds::new(9, 8, 7).validate(&cfg),
            Err(ConfigError::InvalidThresholds {
                constraint: "T2 >= T3 + t"
            })
        ));
        // 2*T3 <= n.
        assert!(matches!(
            Thresholds::new(9, 8, 6).validate(&cfg),
            Err(ConfigError::InvalidThresholds {
                constraint: "2*T3 > n"
            })
        ));
        // T1 = 0.
        assert!(matches!(
            Thresholds::new(0, 0, 0).validate(&cfg),
            Err(ConfigError::InvalidThresholds {
                constraint: "T1 >= 1"
            })
        ));
    }
}

//! Execution traces: a bounded log of notable events in a run.
//!
//! Traces exist for diagnostics and for computing derived metrics (decision
//! windows, message chains, reset counts). They are deliberately bounded: an
//! exponential-time execution would otherwise exhaust memory, so once the cap
//! is reached further events are counted but not stored.

use crate::ids::ProcessorId;
use crate::value::Bit;

/// A single notable event in an execution.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum TraceEvent {
    /// A new acceptable window began (strongly adaptive model).
    WindowStarted {
        /// Zero-based index of the window.
        index: u64,
    },
    /// A message was placed in the buffer.
    Sent {
        /// Sender identity.
        from: ProcessorId,
        /// Recipient identity.
        to: ProcessorId,
    },
    /// A message was delivered to its recipient.
    Delivered {
        /// Sender identity.
        from: ProcessorId,
        /// Recipient identity.
        to: ProcessorId,
    },
    /// The adversary reset a processor (erased its memory).
    Reset {
        /// The reset processor.
        id: ProcessorId,
    },
    /// The adversary crashed a processor (it takes no further steps).
    Crashed {
        /// The crashed processor.
        id: ProcessorId,
    },
    /// The adversary corrupted an outgoing message of a Byzantine processor.
    Corrupted {
        /// The corrupted sender.
        id: ProcessorId,
    },
    /// A processor wrote its output bit.
    Decided {
        /// The deciding processor.
        id: ProcessorId,
        /// The decided value.
        value: Bit,
        /// The window index (or asynchronous step index) at which it decided.
        at: u64,
    },
    /// A processor advanced to a new protocol round.
    RoundAdvanced {
        /// The advancing processor.
        id: ProcessorId,
        /// The new round.
        round: u64,
    },
    /// A correctness violation was observed (conflicting or invalid decision).
    Violation {
        /// Human-readable description of the violation.
        description: String,
    },
}

/// A bounded event log with summary counters.
///
/// # Examples
///
/// ```
/// use agreement_model::{ProcessorId, Trace, TraceEvent};
///
/// let mut trace = Trace::with_capacity(2);
/// trace.push(TraceEvent::WindowStarted { index: 0 });
/// trace.push(TraceEvent::Reset { id: ProcessorId::new(1) });
/// trace.push(TraceEvent::WindowStarted { index: 1 }); // beyond capacity: counted, not stored
/// assert_eq!(trace.stored().len(), 2);
/// assert_eq!(trace.total_events(), 3);
/// assert_eq!(trace.dropped(), 1);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Trace {
    events: Vec<TraceEvent>,
    capacity: usize,
    total: u64,
    sent: u64,
    delivered: u64,
    resets: u64,
    crashes: u64,
    corruptions: u64,
    violations: u64,
}

impl Trace {
    /// Default number of stored events.
    pub const DEFAULT_CAPACITY: usize = 65_536;

    /// Creates a trace with the default storage cap.
    pub fn new() -> Self {
        Trace::with_capacity(Self::DEFAULT_CAPACITY)
    }

    /// Creates a trace storing at most `capacity` events (counters are exact
    /// regardless of the cap).
    pub fn with_capacity(capacity: usize) -> Self {
        Trace {
            events: Vec::new(),
            capacity,
            ..Trace::default()
        }
    }

    /// Records an event.
    pub fn push(&mut self, event: TraceEvent) {
        self.total += 1;
        match &event {
            TraceEvent::Sent { .. } => self.sent += 1,
            TraceEvent::Delivered { .. } => self.delivered += 1,
            TraceEvent::Reset { .. } => self.resets += 1,
            TraceEvent::Crashed { .. } => self.crashes += 1,
            TraceEvent::Corrupted { .. } => self.corruptions += 1,
            TraceEvent::Violation { .. } => self.violations += 1,
            _ => {}
        }
        if self.events.len() < self.capacity {
            self.events.push(event);
        }
    }

    /// The stored prefix of events (up to the capacity).
    pub fn stored(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Total number of events recorded, including dropped ones.
    pub fn total_events(&self) -> u64 {
        self.total
    }

    /// Number of events that exceeded the storage cap.
    pub fn dropped(&self) -> u64 {
        self.total - self.events.len() as u64
    }

    /// Number of messages placed in the buffer.
    pub fn sent_count(&self) -> u64 {
        self.sent
    }

    /// Number of messages delivered.
    pub fn delivered_count(&self) -> u64 {
        self.delivered
    }

    /// Number of resetting steps.
    pub fn reset_count(&self) -> u64 {
        self.resets
    }

    /// Number of crash steps.
    pub fn crash_count(&self) -> u64 {
        self.crashes
    }

    /// Number of corrupted messages.
    pub fn corruption_count(&self) -> u64 {
        self.corruptions
    }

    /// Number of recorded correctness violations.
    pub fn violation_count(&self) -> u64 {
        self.violations
    }

    /// Iterates over stored decision events as `(processor, value, at)`.
    pub fn decisions(&self) -> impl Iterator<Item = (ProcessorId, Bit, u64)> + '_ {
        self.events.iter().filter_map(|e| match e {
            TraceEvent::Decided { id, value, at } => Some((*id, *value, *at)),
            _ => None,
        })
    }
}

/// Compile-time gate on trace emission: either record every event into a
/// [`Trace`] ([`FullTrace`]) or discard everything at zero cost ([`NoTrace`]).
///
/// Execution engines are generic over their recorder, so the choice
/// monomorphizes: with [`NoTrace`] every `record` call is an empty inlined
/// body and the event construction folds away entirely — the campaign hot
/// path pays nothing per message for tracing it will never read. Lazily
/// built events (violation descriptions, which allocate a `String`) go
/// through [`Recorder::record_with`], so even their formatting is skipped
/// when tracing is off.
///
/// Pick [`FullTrace`] for single runs you want to inspect or debug; pick
/// [`NoTrace`] for campaigns that distill each trial into a record and drop
/// the trace unread.
pub trait Recorder: Default {
    /// `true` when recorded events are actually retained. Lets generic code
    /// (and tests) assert which mode it is running in.
    const IS_RECORDING: bool;

    /// Records an event.
    fn record(&mut self, event: TraceEvent);

    /// Records a lazily-built event; `make` runs only when events are
    /// retained, so expensive event payloads (formatted violation strings)
    /// cost nothing under [`NoTrace`].
    fn record_with(&mut self, make: impl FnOnce() -> TraceEvent);

    /// Moves the accumulated trace out of the recorder, leaving it empty.
    /// [`NoTrace`] returns an empty trace (no allocation).
    fn take_trace(&mut self) -> Trace;

    /// Clears the recorder for reuse by the next execution.
    fn reset(&mut self);
}

/// Records every event into an owned [`Trace`] (the diagnostic default).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FullTrace(Trace);

impl FullTrace {
    /// A recorder with an empty trace at the default capacity.
    pub fn new() -> Self {
        FullTrace(Trace::new())
    }

    /// Read access to the trace accumulated so far.
    pub fn trace(&self) -> &Trace {
        &self.0
    }
}

impl Recorder for FullTrace {
    const IS_RECORDING: bool = true;

    #[inline]
    fn record(&mut self, event: TraceEvent) {
        self.0.push(event);
    }

    #[inline]
    fn record_with(&mut self, make: impl FnOnce() -> TraceEvent) {
        self.0.push(make());
    }

    fn take_trace(&mut self) -> Trace {
        std::mem::take(&mut self.0)
    }

    fn reset(&mut self) {
        self.0 = Trace::new();
    }
}

/// Discards every event at compile time (the campaign hot-path choice).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoTrace;

impl Recorder for NoTrace {
    const IS_RECORDING: bool = false;

    #[inline]
    fn record(&mut self, _event: TraceEvent) {}

    #[inline]
    fn record_with(&mut self, _make: impl FnOnce() -> TraceEvent) {}

    fn take_trace(&mut self) -> Trace {
        Trace::new()
    }

    fn reset(&mut self) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_track_event_kinds() {
        let mut t = Trace::new();
        t.push(TraceEvent::Sent {
            from: ProcessorId::new(0),
            to: ProcessorId::new(1),
        });
        t.push(TraceEvent::Delivered {
            from: ProcessorId::new(0),
            to: ProcessorId::new(1),
        });
        t.push(TraceEvent::Reset {
            id: ProcessorId::new(2),
        });
        t.push(TraceEvent::Crashed {
            id: ProcessorId::new(3),
        });
        t.push(TraceEvent::Corrupted {
            id: ProcessorId::new(3),
        });
        t.push(TraceEvent::Violation {
            description: "conflicting decision".to_string(),
        });
        assert_eq!(t.sent_count(), 1);
        assert_eq!(t.delivered_count(), 1);
        assert_eq!(t.reset_count(), 1);
        assert_eq!(t.crash_count(), 1);
        assert_eq!(t.corruption_count(), 1);
        assert_eq!(t.violation_count(), 1);
        assert_eq!(t.total_events(), 6);
        assert_eq!(t.dropped(), 0);
    }

    #[test]
    fn capacity_caps_storage_but_not_counters() {
        let mut t = Trace::with_capacity(3);
        for i in 0..10 {
            t.push(TraceEvent::WindowStarted { index: i });
        }
        assert_eq!(t.stored().len(), 3);
        assert_eq!(t.total_events(), 10);
        assert_eq!(t.dropped(), 7);
    }

    #[test]
    fn decisions_iterator_extracts_decision_events() {
        let mut t = Trace::new();
        t.push(TraceEvent::Decided {
            id: ProcessorId::new(4),
            value: Bit::One,
            at: 17,
        });
        t.push(TraceEvent::RoundAdvanced {
            id: ProcessorId::new(4),
            round: 18,
        });
        let ds: Vec<_> = t.decisions().collect();
        assert_eq!(ds, vec![(ProcessorId::new(4), Bit::One, 17)]);
    }

    #[test]
    fn default_trace_has_default_capacity() {
        let t = Trace::new();
        assert_eq!(t.stored().len(), 0);
        assert_eq!(t.total_events(), 0);
    }

    #[test]
    fn full_trace_records_and_take_empties() {
        let mut rec = FullTrace::new();
        rec.record(TraceEvent::WindowStarted { index: 0 });
        rec.record_with(|| TraceEvent::Violation {
            description: "x".to_string(),
        });
        assert_eq!(rec.trace().total_events(), 2);
        let taken = rec.take_trace();
        assert_eq!(taken.total_events(), 2);
        assert_eq!(taken.violation_count(), 1);
        assert_eq!(rec.trace().total_events(), 0, "take leaves an empty trace");
        assert!(is_recording::<FullTrace>());
    }

    fn is_recording<R: Recorder>() -> bool {
        R::IS_RECORDING
    }

    #[test]
    fn no_trace_discards_everything_and_never_formats() {
        let mut rec = NoTrace;
        rec.record(TraceEvent::WindowStarted { index: 0 });
        rec.record_with(|| unreachable!("lazy events must not be built under NoTrace"));
        assert_eq!(rec.take_trace().total_events(), 0);
        assert_eq!(std::mem::size_of::<NoTrace>(), 0);
        assert!(!is_recording::<NoTrace>());
    }
}

//! Processor identities and round numbers.
//!
//! The paper (Section 2) endows each of the `n` processors with a unique
//! identity between `1` and `n`. Internally we index processors from `0` to
//! `n - 1`; [`ProcessorId::display_index`] recovers the paper's 1-based
//! numbering for human-facing output.

use std::fmt;

/// The identity of a processor in the complete network of `n` processors.
///
/// `ProcessorId` is a zero-based index newtype. It is `Copy`, ordered and
/// hashable so it can be used directly as a map key or sorted into delivery
/// schedules.
///
/// # Examples
///
/// ```
/// use agreement_model::ProcessorId;
///
/// let p = ProcessorId::new(3);
/// assert_eq!(p.index(), 3);
/// assert_eq!(p.display_index(), 4);
/// assert_eq!(format!("{p}"), "p4");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ProcessorId(usize);

impl ProcessorId {
    /// Creates a processor identity from a zero-based index.
    pub const fn new(index: usize) -> Self {
        ProcessorId(index)
    }

    /// Returns the zero-based index of this processor.
    pub const fn index(self) -> usize {
        self.0
    }

    /// Returns the one-based index used by the paper's notation (`1..=n`).
    pub const fn display_index(self) -> usize {
        self.0 + 1
    }

    /// Returns an iterator over all processor identities of a system of size `n`.
    ///
    /// # Examples
    ///
    /// ```
    /// use agreement_model::ProcessorId;
    ///
    /// let ids: Vec<_> = ProcessorId::all(3).collect();
    /// assert_eq!(ids, vec![ProcessorId::new(0), ProcessorId::new(1), ProcessorId::new(2)]);
    /// ```
    pub fn all(n: usize) -> impl Iterator<Item = ProcessorId> + Clone {
        (0..n).map(ProcessorId::new)
    }
}

impl fmt::Display for ProcessorId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.display_index())
    }
}

impl From<usize> for ProcessorId {
    fn from(index: usize) -> Self {
        ProcessorId::new(index)
    }
}

impl From<ProcessorId> for usize {
    fn from(id: ProcessorId) -> Self {
        id.index()
    }
}

/// A protocol-internal round number (the variable `r_p` of the Section 3 algorithm).
///
/// Round numbers start at `1`, matching the paper. A freshly reset processor
/// has no round number until it resynchronizes; that state is represented by
/// `Option<RoundNumber>` at the use sites, not by a sentinel value here.
///
/// # Examples
///
/// ```
/// use agreement_model::RoundNumber;
///
/// let r = RoundNumber::first();
/// assert_eq!(r.get(), 1);
/// assert_eq!(r.next().get(), 2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RoundNumber(u64);

impl RoundNumber {
    /// The first round of the protocol.
    pub const fn first() -> Self {
        RoundNumber(1)
    }

    /// Creates a round number from a raw value.
    ///
    /// # Panics
    ///
    /// Panics if `round` is zero; rounds are numbered from one.
    pub fn new(round: u64) -> Self {
        assert!(round >= 1, "round numbers start at 1");
        RoundNumber(round)
    }

    /// Returns the raw round value.
    pub const fn get(self) -> u64 {
        self.0
    }

    /// Returns the round that follows this one.
    pub const fn next(self) -> Self {
        RoundNumber(self.0 + 1)
    }
}

impl Default for RoundNumber {
    fn default() -> Self {
        RoundNumber::first()
    }
}

impl fmt::Display for RoundNumber {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn processor_id_round_trips_through_usize() {
        let id = ProcessorId::from(7usize);
        assert_eq!(usize::from(id), 7);
        assert_eq!(id.index(), 7);
        assert_eq!(id.display_index(), 8);
    }

    #[test]
    fn processor_id_display_is_one_based() {
        assert_eq!(ProcessorId::new(0).to_string(), "p1");
        assert_eq!(ProcessorId::new(9).to_string(), "p10");
    }

    #[test]
    fn all_yields_n_distinct_ids_in_order() {
        let ids: Vec<_> = ProcessorId::all(5).collect();
        assert_eq!(ids.len(), 5);
        let set: BTreeSet<_> = ids.iter().copied().collect();
        assert_eq!(set.len(), 5);
        assert!(ids.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn all_with_zero_is_empty() {
        assert_eq!(ProcessorId::all(0).count(), 0);
    }

    #[test]
    fn round_number_starts_at_one_and_increments() {
        let r = RoundNumber::first();
        assert_eq!(r.get(), 1);
        assert_eq!(r.next().get(), 2);
        assert_eq!(r.next().next().get(), 3);
        assert_eq!(RoundNumber::default(), RoundNumber::first());
    }

    #[test]
    #[should_panic(expected = "round numbers start at 1")]
    fn round_number_zero_panics() {
        let _ = RoundNumber::new(0);
    }

    #[test]
    fn round_number_ordering_matches_value() {
        assert!(RoundNumber::new(2) < RoundNumber::new(3));
        assert_eq!(RoundNumber::new(4).to_string(), "r4");
    }
}

//! Base model types for the reproduction of Lewko & Lewko,
//! *"On the Complexity of Asynchronous Agreement Against Powerful
//! Adversaries"* (PODC 2013).
//!
//! This crate defines the vocabulary shared by every other crate in the
//! workspace:
//!
//! * [`ProcessorId`], [`RoundNumber`] — identities and protocol rounds.
//! * [`Bit`], [`OutputRegister`], [`InputAssignment`] — binary agreement
//!   values and the write-once output bit of the paper's model.
//! * [`SystemConfig`], [`Thresholds`] — the `(n, t)` system parameters and the
//!   `T1 >= T2 >= T3` thresholds of the Section 3 protocol, with the
//!   Theorem 4 validity constraints.
//! * [`Envelope`], [`Payload`] — messages and the closed payload vocabulary
//!   that full-information adversaries inspect.
//! * [`Protocol`], [`ProtocolBuilder`], [`Context`], [`StateDigest`] — the
//!   event-driven state-machine abstraction engines drive.
//! * [`ProcessorRng`] — deterministic, per-processor random streams.
//! * [`Trace`], [`TraceEvent`] — bounded execution logs.
//!
//! # Example
//!
//! ```
//! use agreement_model::{Bit, InputAssignment, SystemConfig, Thresholds};
//!
//! // A 13-processor system tolerating t < n/6 resets per acceptable window.
//! let cfg = SystemConfig::with_sixth_resilience(13)?;
//! assert_eq!(cfg.t(), 2);
//!
//! // The threshold setting used in the proof of Theorem 4.
//! let thresholds = Thresholds::recommended(&cfg)?;
//! assert!(thresholds.is_valid_for(&cfg));
//!
//! // The adversarially chosen evenly-split input assignment of Section 3.
//! let inputs = InputAssignment::evenly_split(cfg.n());
//! assert_eq!(inputs.count(Bit::Zero), 7);
//! # Ok::<(), agreement_model::ConfigError>(())
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod config;
mod error;
mod ids;
mod message;
mod protocol;
mod rng;
mod trace;
mod value;

pub use config::{SystemConfig, Thresholds};
pub use error::{ConfigError, ModelError};
pub use ids::{ProcessorId, RoundNumber};
pub use message::{CommitteeMsg, Envelope, Payload, RbcStep};
pub use protocol::{Context, Protocol, ProtocolBuilder, StateDigest};
pub use rng::{derive_seed, splitmix64, ProcessorRng};
pub use trace::{FullTrace, NoTrace, Recorder, Trace, TraceEvent};
pub use value::{Bit, InputAssignment, OutputRegister};

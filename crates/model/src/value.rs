//! Binary values: input bits, estimates and write-once output bits.
//!
//! The agreement problem of the paper is over binary values. Each processor
//! starts with an input [`Bit`], maintains a current estimate (the variable
//! `x_p`), and owns a write-once output bit that is initially unset (`⊥` in
//! the paper) and may be written at most once.

use std::fmt;
use std::ops::Not;

use crate::error::ModelError;

/// A binary agreement value.
///
/// # Examples
///
/// ```
/// use agreement_model::Bit;
///
/// assert_eq!(!Bit::Zero, Bit::One);
/// assert_eq!(Bit::from(true), Bit::One);
/// assert_eq!(u8::from(Bit::Zero), 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Bit {
    /// The value `0`.
    Zero,
    /// The value `1`.
    One,
}

impl Bit {
    /// Both bit values, in ascending order.
    pub const ALL: [Bit; 2] = [Bit::Zero, Bit::One];

    /// Returns `true` if this is [`Bit::One`].
    pub const fn is_one(self) -> bool {
        matches!(self, Bit::One)
    }

    /// Returns `true` if this is [`Bit::Zero`].
    pub const fn is_zero(self) -> bool {
        matches!(self, Bit::Zero)
    }

    /// Returns the opposite bit.
    pub const fn flipped(self) -> Bit {
        match self {
            Bit::Zero => Bit::One,
            Bit::One => Bit::Zero,
        }
    }

    /// Converts the bit to `0usize` or `1usize`, convenient for indexing
    /// two-element tally arrays.
    pub const fn as_index(self) -> usize {
        match self {
            Bit::Zero => 0,
            Bit::One => 1,
        }
    }
}

impl Not for Bit {
    type Output = Bit;

    fn not(self) -> Bit {
        self.flipped()
    }
}

impl From<bool> for Bit {
    fn from(value: bool) -> Self {
        if value {
            Bit::One
        } else {
            Bit::Zero
        }
    }
}

impl From<Bit> for bool {
    fn from(bit: Bit) -> bool {
        bit.is_one()
    }
}

impl From<Bit> for u8 {
    fn from(bit: Bit) -> u8 {
        bit.as_index() as u8
    }
}

impl TryFrom<u8> for Bit {
    type Error = ModelError;

    fn try_from(value: u8) -> Result<Self, Self::Error> {
        match value {
            0 => Ok(Bit::Zero),
            1 => Ok(Bit::One),
            other => Err(ModelError::InvalidBit(other)),
        }
    }
}

impl fmt::Display for Bit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.as_index())
    }
}

/// A write-once output register, the paper's output bit with initial value `⊥`.
///
/// The register starts unwritten and accepts exactly one write. Later writes
/// of the *same* value are idempotent no-ops (a processor may legitimately
/// re-derive its decision after a reset); a write of a conflicting value is an
/// error, which the simulation surfaces as a correctness violation.
///
/// # Examples
///
/// ```
/// use agreement_model::{Bit, OutputRegister};
///
/// let mut out = OutputRegister::new();
/// assert!(out.get().is_none());
/// out.write(Bit::One)?;
/// assert_eq!(out.get(), Some(Bit::One));
/// // Idempotent re-write of the same value is allowed.
/// out.write(Bit::One)?;
/// // A conflicting write is rejected.
/// assert!(out.write(Bit::Zero).is_err());
/// # Ok::<(), agreement_model::ModelError>(())
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct OutputRegister {
    value: Option<Bit>,
}

impl OutputRegister {
    /// Creates an unwritten output register (`⊥`).
    pub const fn new() -> Self {
        OutputRegister { value: None }
    }

    /// Returns the written value, or `None` if the register is still `⊥`.
    pub const fn get(&self) -> Option<Bit> {
        self.value
    }

    /// Returns `true` once a value has been written.
    pub const fn is_written(&self) -> bool {
        self.value.is_some()
    }

    /// Writes `value` to the register.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::ConflictingDecision`] if a different value has
    /// already been written.
    pub fn write(&mut self, value: Bit) -> Result<(), ModelError> {
        match self.value {
            None => {
                self.value = Some(value);
                Ok(())
            }
            Some(existing) if existing == value => Ok(()),
            Some(existing) => Err(ModelError::ConflictingDecision {
                existing,
                attempted: value,
            }),
        }
    }
}

impl fmt::Display for OutputRegister {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.value {
            Some(bit) => write!(f, "{bit}"),
            None => write!(f, "⊥"),
        }
    }
}

/// An assignment of input bits to all `n` processors.
///
/// # Examples
///
/// ```
/// use agreement_model::{Bit, InputAssignment};
///
/// let unanimous = InputAssignment::unanimous(4, Bit::One);
/// assert!(unanimous.is_unanimous());
///
/// let split = InputAssignment::evenly_split(4);
/// assert_eq!(split.count(Bit::Zero), 2);
/// assert_eq!(split.count(Bit::One), 2);
/// ```
#[derive(Debug, PartialEq, Eq, Hash)]
pub struct InputAssignment {
    bits: Vec<Bit>,
}

impl Clone for InputAssignment {
    fn clone(&self) -> Self {
        InputAssignment {
            bits: self.bits.clone(),
        }
    }

    /// Reuses the destination's allocation (campaign workspaces re-clone the
    /// plan's inputs once per trial; the buffer must stay warm).
    fn clone_from(&mut self, source: &Self) {
        self.bits.clone_from(&source.bits);
    }
}

impl InputAssignment {
    /// Creates an assignment from explicit per-processor bits.
    pub fn new(bits: Vec<Bit>) -> Self {
        InputAssignment { bits }
    }

    /// All processors share the same input `value`.
    pub fn unanimous(n: usize, value: Bit) -> Self {
        InputAssignment {
            bits: vec![value; n],
        }
    }

    /// The first `⌈n/2⌉` processors hold `0`, the rest hold `1`.
    ///
    /// This is the adversarially chosen "evenly split" input setting discussed
    /// at the end of Section 3 of the paper.
    pub fn evenly_split(n: usize) -> Self {
        let zeros = n.div_ceil(2);
        let bits = (0..n)
            .map(|i| if i < zeros { Bit::Zero } else { Bit::One })
            .collect();
        InputAssignment { bits }
    }

    /// The first `zeros` processors hold `0`, the rest hold `1`.
    pub fn split_at(n: usize, zeros: usize) -> Self {
        assert!(zeros <= n, "cannot assign more zeros than processors");
        let bits = (0..n)
            .map(|i| if i < zeros { Bit::Zero } else { Bit::One })
            .collect();
        InputAssignment { bits }
    }

    /// Number of processors in the assignment.
    pub fn len(&self) -> usize {
        self.bits.len()
    }

    /// Returns `true` if the assignment covers zero processors.
    pub fn is_empty(&self) -> bool {
        self.bits.is_empty()
    }

    /// The input bit of processor `index` (zero-based).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    pub fn bit(&self, index: usize) -> Bit {
        self.bits[index]
    }

    /// Iterates over the per-processor bits in identity order.
    pub fn iter(&self) -> impl Iterator<Item = Bit> + '_ {
        self.bits.iter().copied()
    }

    /// Counts how many processors hold `value`.
    pub fn count(&self, value: Bit) -> usize {
        self.bits.iter().filter(|&&b| b == value).count()
    }

    /// Returns `true` if every processor holds the same input.
    pub fn is_unanimous(&self) -> bool {
        self.bits.windows(2).all(|w| w[0] == w[1])
    }

    /// Returns the slice of bits.
    pub fn as_slice(&self) -> &[Bit] {
        &self.bits
    }

    /// Returns `Some(v)` when the assignment is unanimous with value `v`.
    pub fn unanimous_value(&self) -> Option<Bit> {
        if self.bits.is_empty() || !self.is_unanimous() {
            None
        } else {
            Some(self.bits[0])
        }
    }
}

impl fmt::Display for InputAssignment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for bit in &self.bits {
            write!(f, "{bit}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bit_flip_and_not_agree() {
        assert_eq!(Bit::Zero.flipped(), Bit::One);
        assert_eq!(!Bit::One, Bit::Zero);
        assert_eq!(Bit::Zero.flipped().flipped(), Bit::Zero);
    }

    #[test]
    fn bit_conversions() {
        assert_eq!(Bit::from(true), Bit::One);
        assert_eq!(Bit::from(false), Bit::Zero);
        assert!(bool::from(Bit::One));
        assert_eq!(u8::from(Bit::One), 1);
        assert_eq!(Bit::try_from(0u8).unwrap(), Bit::Zero);
        assert_eq!(Bit::try_from(1u8).unwrap(), Bit::One);
        assert!(Bit::try_from(2u8).is_err());
    }

    #[test]
    fn bit_as_index_covers_both_values() {
        assert_eq!(Bit::Zero.as_index(), 0);
        assert_eq!(Bit::One.as_index(), 1);
        assert_eq!(Bit::ALL.len(), 2);
    }

    #[test]
    fn output_register_starts_unwritten() {
        let out = OutputRegister::new();
        assert!(!out.is_written());
        assert_eq!(out.get(), None);
        assert_eq!(out.to_string(), "⊥");
    }

    #[test]
    fn output_register_accepts_single_value() {
        let mut out = OutputRegister::new();
        out.write(Bit::Zero).unwrap();
        assert_eq!(out.get(), Some(Bit::Zero));
        assert_eq!(out.to_string(), "0");
        // Idempotent rewrite allowed.
        out.write(Bit::Zero).unwrap();
        // Conflicting write rejected.
        let err = out.write(Bit::One).unwrap_err();
        assert!(matches!(err, ModelError::ConflictingDecision { .. }));
        // Value unchanged after the failed write.
        assert_eq!(out.get(), Some(Bit::Zero));
    }

    #[test]
    fn unanimous_assignment_detected() {
        let a = InputAssignment::unanimous(5, Bit::One);
        assert!(a.is_unanimous());
        assert_eq!(a.unanimous_value(), Some(Bit::One));
        assert_eq!(a.count(Bit::One), 5);
        assert_eq!(a.count(Bit::Zero), 0);
        assert_eq!(a.len(), 5);
    }

    #[test]
    fn evenly_split_assignment_is_balanced() {
        let a = InputAssignment::evenly_split(7);
        assert_eq!(a.count(Bit::Zero), 4);
        assert_eq!(a.count(Bit::One), 3);
        assert!(!a.is_unanimous());
        assert_eq!(a.unanimous_value(), None);
    }

    #[test]
    fn split_at_places_zeros_first() {
        let a = InputAssignment::split_at(4, 1);
        assert_eq!(a.bit(0), Bit::Zero);
        assert_eq!(a.bit(1), Bit::One);
        assert_eq!(a.count(Bit::Zero), 1);
        assert_eq!(a.to_string(), "0111");
    }

    #[test]
    #[should_panic(expected = "cannot assign more zeros than processors")]
    fn split_at_rejects_too_many_zeros() {
        let _ = InputAssignment::split_at(3, 4);
    }

    #[test]
    fn empty_assignment_is_not_unanimous_valued() {
        let a = InputAssignment::new(vec![]);
        assert!(a.is_empty());
        assert_eq!(a.unanimous_value(), None);
    }
}

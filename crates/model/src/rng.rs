//! Deterministic randomness plumbing.
//!
//! The paper assumes each processor has an unbiased, independent source of
//! random bits (Section 2). For reproducibility every experiment in this
//! workspace runs from a single master seed, from which each processor's
//! random stream is derived with a SplitMix64 hash; distinct processors (and
//! distinct "forks", e.g. adversary randomness vs. processor randomness) get
//! statistically independent streams.
//!
//! The generator itself is a self-contained xoshiro256++ implementation (the
//! same family `rand::rngs::SmallRng` uses), so the workspace carries no
//! external dependency and seeds stay stable across toolchains.

use crate::ids::ProcessorId;
use crate::value::Bit;

/// Stateless SplitMix64 finalizer used to derive substream seeds.
///
/// This is the standard SplitMix64 output function; it is a bijection on
/// `u64`, so distinct (master, stream) pairs yield distinct seeds.
#[must_use]
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives a substream seed from a master seed and a stream label.
#[must_use]
pub fn derive_seed(master: u64, stream: u64) -> u64 {
    splitmix64(master ^ splitmix64(stream.wrapping_mul(0xA24B_AED4_963E_E407)))
}

/// A processor's private source of random bits.
///
/// # Examples
///
/// ```
/// use agreement_model::{ProcessorId, ProcessorRng};
///
/// let mut a = ProcessorRng::for_processor(42, ProcessorId::new(0));
/// let mut b = ProcessorRng::for_processor(42, ProcessorId::new(0));
/// // Same seed and identity: identical streams.
/// assert_eq!(a.bit(), b.bit());
/// assert_eq!(a.range(10), b.range(10));
/// ```
#[derive(Debug, Clone)]
pub struct ProcessorRng {
    state: [u64; 4],
}

impl ProcessorRng {
    /// Creates the random stream of processor `id` under `master` seed.
    pub fn for_processor(master: u64, id: ProcessorId) -> Self {
        ProcessorRng::from_seed(derive_seed(master, id.index() as u64))
    }

    /// Creates a random stream for non-processor use (adversary choices,
    /// workload generation, …) under `master` seed and a caller-chosen label.
    pub fn labelled(master: u64, label: u64) -> Self {
        ProcessorRng::from_seed(derive_seed(master, label ^ 0xDEAD_BEEF_CAFE_F00D))
    }

    /// Creates a stream directly from a raw seed.
    pub fn from_seed(seed: u64) -> Self {
        // Expand the 64-bit seed into 256 bits of xoshiro state by chaining
        // SplitMix64, the initialization the xoshiro authors recommend.
        let mut z = seed;
        let mut state = [0u64; 4];
        for slot in &mut state {
            z = splitmix64(z);
            *slot = z;
        }
        ProcessorRng { state }
    }

    /// Advances the xoshiro256++ state and returns the next 64 random bits.
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Samples one unbiased random bit.
    pub fn bit(&mut self) -> Bit {
        Bit::from(self.next_u64() & 1 == 1)
    }

    /// Samples a uniformly random integer in `0..bound`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn range(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "range bound must be positive");
        // Lemire's unbiased multiply-shift rejection method.
        let threshold = bound.wrapping_neg() % bound;
        loop {
            let wide = u128::from(self.next_u64()) * u128::from(bound);
            if wide as u64 >= threshold {
                return (wide >> 64) as u64;
            }
        }
    }

    /// Samples a full-width random `u64` (used for lottery tickets).
    pub fn ticket(&mut self) -> u64 {
        self.next_u64()
    }

    /// Samples `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not within `0.0..=1.0`.
    pub fn chance(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability must be in 0..=1");
        // 53 uniform mantissa bits: a float in [0, 1).
        let sample = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        sample < p
    }

    /// Derives an independent child stream, labelled by `label`.
    pub fn fork(&mut self, label: u64) -> ProcessorRng {
        let base = self.next_u64();
        ProcessorRng::from_seed(derive_seed(base, label))
    }

    /// Produces a random permutation of `0..len` (Fisher–Yates).
    pub fn permutation(&mut self, len: usize) -> Vec<usize> {
        let mut items: Vec<usize> = (0..len).collect();
        for i in (1..len).rev() {
            let j = self.range(i as u64 + 1) as usize;
            items.swap(i, j);
        }
        items
    }

    /// Chooses `k` distinct indices uniformly at random from `0..len`.
    ///
    /// # Panics
    ///
    /// Panics if `k > len`.
    pub fn choose_distinct(&mut self, len: usize, k: usize) -> Vec<usize> {
        assert!(k <= len, "cannot choose {k} distinct items from {len}");
        let mut perm = self.permutation(len);
        perm.truncate(k);
        perm.sort_unstable();
        perm
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn splitmix_is_deterministic_and_nontrivial() {
        assert_eq!(splitmix64(1), splitmix64(1));
        assert_ne!(splitmix64(1), splitmix64(2));
        assert_ne!(splitmix64(0), 0);
    }

    #[test]
    fn derived_seeds_differ_across_streams() {
        let seeds: BTreeSet<u64> = (0..100).map(|s| derive_seed(7, s)).collect();
        assert_eq!(seeds.len(), 100);
    }

    #[test]
    fn same_processor_same_master_gives_identical_stream() {
        let mut a = ProcessorRng::for_processor(1, ProcessorId::new(3));
        let mut b = ProcessorRng::for_processor(1, ProcessorId::new(3));
        for _ in 0..32 {
            assert_eq!(a.bit(), b.bit());
        }
    }

    #[test]
    fn different_processors_get_different_streams() {
        let mut a = ProcessorRng::for_processor(1, ProcessorId::new(0));
        let mut b = ProcessorRng::for_processor(1, ProcessorId::new(1));
        let av: Vec<u64> = (0..16).map(|_| a.ticket()).collect();
        let bv: Vec<u64> = (0..16).map(|_| b.ticket()).collect();
        assert_ne!(av, bv);
    }

    #[test]
    fn bits_are_roughly_balanced() {
        let mut rng = ProcessorRng::labelled(99, 0);
        let ones = (0..10_000).filter(|_| rng.bit().is_one()).count();
        assert!((3_500..=6_500).contains(&ones), "ones={ones}");
    }

    #[test]
    fn range_respects_bound() {
        let mut rng = ProcessorRng::from_seed(5);
        for _ in 0..1000 {
            assert!(rng.range(7) < 7);
        }
    }

    #[test]
    #[should_panic(expected = "range bound must be positive")]
    fn range_zero_panics() {
        let mut rng = ProcessorRng::from_seed(5);
        let _ = rng.range(0);
    }

    #[test]
    fn permutation_is_a_permutation() {
        let mut rng = ProcessorRng::from_seed(11);
        let p = rng.permutation(20);
        let set: BTreeSet<usize> = p.iter().copied().collect();
        assert_eq!(set.len(), 20);
        assert_eq!(*set.iter().max().unwrap(), 19);
    }

    #[test]
    fn choose_distinct_yields_sorted_unique_subset() {
        let mut rng = ProcessorRng::from_seed(12);
        let chosen = rng.choose_distinct(10, 4);
        assert_eq!(chosen.len(), 4);
        assert!(chosen.windows(2).all(|w| w[0] < w[1]));
        assert!(chosen.iter().all(|&i| i < 10));
    }

    #[test]
    fn fork_produces_independent_looking_streams() {
        let mut parent = ProcessorRng::from_seed(77);
        let mut c1 = parent.fork(1);
        let mut c2 = parent.fork(2);
        let v1: Vec<u64> = (0..8).map(|_| c1.ticket()).collect();
        let v2: Vec<u64> = (0..8).map(|_| c2.ticket()).collect();
        assert_ne!(v1, v2);
    }

    #[test]
    fn chance_extremes() {
        let mut rng = ProcessorRng::from_seed(3);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
    }
}

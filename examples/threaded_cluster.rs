//! Run the protocols as a real multi-threaded cluster (one OS thread per
//! processor, mpsc channels in between) rather than under the simulator.
//!
//! Run with: `cargo run --example threaded_cluster`

use std::time::Duration;

use agreement::model::{Bit, InputAssignment, ProcessorId, SystemConfig};
use agreement::net::Cluster;
use agreement::protocols::{BenOrBuilder, ResetTolerantBuilder};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = SystemConfig::new(9, 1)?;
    let inputs = InputAssignment::evenly_split(9);

    let outcome = Cluster::new(cfg, inputs.clone(), 7)
        .deadline(Duration::from_secs(20))
        .run(&BenOrBuilder::new());
    println!(
        "ben-or          : decided {:?} in {:?} (agreement = {})",
        outcome.decisions.iter().flatten().next(),
        outcome.elapsed,
        outcome.agreement_holds()
    );

    let cfg = SystemConfig::with_sixth_resilience(13)?;
    let builder = ResetTolerantBuilder::recommended(&cfg)?;
    let inputs = InputAssignment::unanimous(13, Bit::Zero);
    let outcome = Cluster::new(cfg, inputs.clone(), 9)
        .silence(vec![ProcessorId::new(12)])
        .deadline(Duration::from_secs(20))
        .run(&builder);
    println!(
        "reset-tolerant  : decided {:?} in {:?} with one silenced processor (validity = {})",
        outcome.decisions.iter().flatten().next(),
        outcome.elapsed,
        outcome.validity_holds(&inputs)
    );
    Ok(())
}

//! A "reset storm": every acceptable window the adversary erases the memory of
//! the t most advanced processors, so over a long run far more than t total
//! failures occur — and the reset-tolerant protocol still agrees, exactly the
//! resilience the paper's Section 3 establishes.
//!
//! Run with: `cargo run --example reset_storm`

use agreement::adversary::{SplitVoteAdversary, TargetedResetAdversary};
use agreement::model::{Bit, InputAssignment, SystemConfig};
use agreement::protocols::ResetTolerantBuilder;
use agreement::sim::{run_windowed, RunLimits};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = SystemConfig::with_sixth_resilience(19)?;
    let builder = ResetTolerantBuilder::recommended(&cfg)?;

    for (label, inputs) in [
        (
            "unanimous 0",
            InputAssignment::unanimous(cfg.n(), Bit::Zero),
        ),
        ("evenly split", InputAssignment::evenly_split(cfg.n())),
    ] {
        // Targeted resets, then the harsher split-vote + resets combination.
        let targeted = run_windowed(
            cfg,
            inputs.clone(),
            &builder,
            &mut TargetedResetAdversary::new(),
            7,
            RunLimits::windows(100_000),
        );
        let balancing = run_windowed(
            cfg,
            inputs.clone(),
            &builder,
            &mut SplitVoteAdversary::with_resets(),
            7,
            RunLimits::windows(100_000),
        );
        println!("inputs: {label}");
        println!(
            "  targeted resets  : decided {:?} after {:?} windows, {} total resets",
            targeted.decided_value(),
            targeted.all_decided_at,
            targeted.resets_performed
        );
        println!(
            "  split-vote+resets: decided {:?} after {:?} windows, {} total resets",
            balancing.decided_value(),
            balancing.all_decided_at,
            balancing.resets_performed
        );
        assert!(targeted.is_correct(&inputs));
        assert!(balancing.is_correct(&inputs));
    }
    Ok(())
}

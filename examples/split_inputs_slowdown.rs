//! The headline phenomenon: on adversarially split inputs, the split-vote
//! (balancing) adversary stretches the reset-tolerant protocol over many
//! acceptable windows, and the slowdown grows rapidly with n — the behaviour
//! Theorem 5 proves is unavoidable.
//!
//! Run with: `cargo run --release --example split_inputs_slowdown`

use agreement::adversary::SplitVoteAdversary;
use agreement::analysis::{exponential_fit, Summary};
use agreement::model::{InputAssignment, SystemConfig};
use agreement::protocols::ResetTolerantBuilder;
use agreement::sim::{run_windowed, FullDeliveryAdversary, RunLimits};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let trials = 10u64;
    let mut points = Vec::new();
    println!(
        "{:>4} {:>4} {:>22} {:>22}",
        "n", "t", "mean windows (benign)", "mean windows (split-vote)"
    );
    for n in [7usize, 9, 11, 13, 15] {
        let cfg = SystemConfig::with_sixth_resilience(n)?;
        let builder = ResetTolerantBuilder::recommended(&cfg)?;
        let inputs = InputAssignment::evenly_split(n);
        let mut benign = Vec::new();
        let mut adversarial = Vec::new();
        for seed in 0..trials {
            let fair = run_windowed(
                cfg,
                inputs.clone(),
                &builder,
                &mut FullDeliveryAdversary,
                seed,
                RunLimits::windows(100_000),
            );
            benign.push(fair.all_decided_at.unwrap_or(100_000) as f64);
            let slow = run_windowed(
                cfg,
                inputs.clone(),
                &builder,
                &mut SplitVoteAdversary::new(),
                seed,
                RunLimits::windows(100_000),
            );
            adversarial.push(slow.all_decided_at.unwrap_or(100_000) as f64);
        }
        let benign = Summary::from_samples(&benign);
        let adversarial = Summary::from_samples(&adversarial);
        println!(
            "{:>4} {:>4} {:>22.2} {:>22.2}",
            n,
            cfg.t(),
            benign.mean,
            adversarial.mean
        );
        points.push((n as f64, adversarial.mean.max(1.0)));
    }
    let fit = exponential_fit(&points);
    println!(
        "\nfitted growth under the split-vote adversary: windows ≈ {:.3}·exp({:.3}·n)  (R² = {:.3})",
        fit.prefactor, fit.rate, fit.r_squared
    );
    Ok(())
}

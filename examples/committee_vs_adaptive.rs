//! The paper's motivating contrast (Section 1): a committee-based protocol in
//! the style of Kapron et al. is fast against a *non-adaptive* adversary, but
//! an *adaptive* adversary simply waits for the committee to be known and
//! silences it — while quorum-based protocols shrug the same budget off.
//!
//! Run with: `cargo run --example committee_vs_adaptive`

use agreement::adversary::{AdaptiveCommitteeKiller, NonAdaptiveCrashAdversary};
use agreement::model::{Bit, InputAssignment, SystemConfig};
use agreement::protocols::{BenOrBuilder, CommitteeBuilder};
use agreement::sim::{run_async, RunLimits};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 30;
    let t = 3;
    let cfg = SystemConfig::new(n, t)?;
    let inputs = InputAssignment::unanimous(n, Bit::One);
    let committee = CommitteeBuilder::random(&cfg, 5, 0xC0FFEE);
    println!("committee members: {:?}\n", committee.committee());

    let mut non_adaptive = NonAdaptiveCrashAdversary::random(n, t, 99);
    let fast = run_async(
        cfg,
        inputs.clone(),
        &committee,
        &mut non_adaptive,
        1,
        RunLimits::standard(),
    );
    println!(
        "committee vs non-adaptive crash : terminated = {}, decided = {:?}, chain = {}",
        fast.all_correct_decided(),
        fast.decided_value(),
        fast.longest_chain
    );

    let mut killer = AdaptiveCommitteeKiller::new(committee.committee().to_vec());
    let stalled = run_async(
        cfg,
        inputs.clone(),
        &committee,
        &mut killer,
        1,
        RunLimits::standard(),
    );
    println!(
        "committee vs adaptive killer    : terminated = {}, decided = {:?}",
        stalled.all_correct_decided(),
        stalled.decided_value()
    );

    let mut killer = AdaptiveCommitteeKiller::new(committee.committee().to_vec());
    let robust = run_async(
        cfg,
        inputs.clone(),
        &BenOrBuilder::new(),
        &mut killer,
        1,
        RunLimits::standard(),
    );
    println!(
        "ben-or    vs adaptive killer    : terminated = {}, decided = {:?}",
        robust.all_correct_decided(),
        robust.decided_value()
    );
    Ok(())
}

//! Quickstart: run the paper's reset-tolerant protocol against a strongly
//! adaptive (resetting) adversary and print what happened.
//!
//! Run with: `cargo run --example quickstart`

use agreement::adversary::RotatingResetAdversary;
use agreement::model::{Bit, InputAssignment, SystemConfig};
use agreement::protocols::ResetTolerantBuilder;
use agreement::sim::{run_windowed, RunLimits};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 13 processors, tolerating t < n/6 = 2 resets per acceptable window.
    let cfg = SystemConfig::with_sixth_resilience(13)?;
    let builder = ResetTolerantBuilder::recommended(&cfg)?;
    println!(
        "n = {}, t = {}, thresholds T1/T2/T3 = {}/{}/{}",
        cfg.n(),
        cfg.t(),
        builder.thresholds().t1(),
        builder.thresholds().t2(),
        builder.thresholds().t3()
    );

    // Unanimous inputs: Theorem 4's validity forces the decision to be 1.
    let inputs = InputAssignment::unanimous(cfg.n(), Bit::One);
    let outcome = run_windowed(
        cfg,
        inputs.clone(),
        &builder,
        &mut RotatingResetAdversary::new(),
        42,
        RunLimits::standard(),
    );

    println!("decided value      : {:?}", outcome.decided_value());
    println!("windows to decision: {:?}", outcome.all_decided_at);
    println!("agreement holds    : {}", outcome.agreement_holds());
    println!("validity holds     : {}", outcome.validity_holds(&inputs));

    // Every outcome carries structured metrics: message, reset and coin-flip
    // counts, plus the longest causal message chain any processor received.
    let metrics = outcome.metrics;
    println!("resets performed   : {}", metrics.resets_consumed);
    println!("messages sent      : {}", metrics.messages_sent);
    println!("max causal chain   : {}", metrics.max_chain);
    assert!(outcome.is_correct(&inputs));
    assert_eq!(metrics.windows, outcome.duration);
    Ok(())
}

//! Standalone orchestration worker: dials the coordinator given by
//! `--connect <addr>` and serves sharded seed ranges until shutdown.
//!
//! The `scenarios` binary spawns *itself* with `--worker` for everyday use;
//! this separate binary exists so integration tests and benches of the root
//! package can spawn a worker via `CARGO_BIN_EXE_orchestrate_worker` without
//! depending on the bench crate's binaries.

use std::process::ExitCode;

use agreement::core::orchestrate::worker;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let mut addr = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--connect" => addr = args.next(),
            other => {
                eprintln!("orchestrate_worker: unexpected argument '{other}'");
                return ExitCode::FAILURE;
            }
        }
    }
    let Some(addr) = addr else {
        eprintln!("usage: orchestrate_worker --connect <addr>");
        return ExitCode::FAILURE;
    };
    match worker::serve(&addr) {
        Ok(()) => ExitCode::SUCCESS,
        Err(err) => {
            eprintln!("orchestrate_worker: {err}");
            ExitCode::FAILURE
        }
    }
}

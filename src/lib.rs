//! # agreement
//!
//! A reproduction of Lewko & Lewko, *"On the Complexity of Asynchronous
//! Agreement Against Powerful Adversaries"* (PODC 2013), as a Rust workspace.
//!
//! This facade crate re-exports the workspace's crates under one roof so the
//! examples and integration tests can address the whole system:
//!
//! * [`model`] — processors, bits, messages, configurations, protocol traits.
//! * [`sim`] — the generic execution engine over an open model axis: the
//!   acceptable-window model (strongly adaptive), the fully asynchronous
//!   model (crash/Byzantine), and the partial-synchrony model (eventual
//!   synchrony with omission faults).
//! * [`protocols`] — Ben-Or, Bracha (+ reliable broadcast), the paper's
//!   reset-tolerant protocol, and the committee baseline.
//! * [`adversary`] — resetting, balancing, crash, committee-killer,
//!   Byzantine and partial-synchrony (GST-procrastination, omission)
//!   adversaries.
//! * [`analysis`] — Hamming geometry, product distributions, Talagrand's
//!   inequality, the Z-set recursion, Theorem 5 constants, statistics.
//! * [`net`] — a threaded message-passing runtime for the same protocols.
//! * [`core`] — the experiment harness (E1–E9) and report tables.
//!
//! See the repository README for a quickstart and DESIGN.md / EXPERIMENTS.md
//! for the system inventory and the per-claim experiment index.

#![warn(missing_docs)]

pub use agreement_adversary as adversary;
pub use agreement_analysis as analysis;
pub use agreement_core as core;
pub use agreement_model as model;
pub use agreement_net as net;
pub use agreement_protocols as protocols;
pub use agreement_sim as sim;
